//! Scheduling policies of the uniprocessor simulator.

use edf_model::TaskSet;

use crate::job::Job;

/// Preemptive uniprocessor scheduling policies supported by the simulator.
///
/// EDF is optimal on a uniprocessor (Liu & Layland, ref. \[12\] of the
/// paper): if any policy can schedule a task set, EDF can.  The
/// fixed-priority policies are provided so examples and tests can
/// demonstrate exactly that gap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SchedulingPolicy {
    /// Earliest deadline first (dynamic priorities, optimal).
    #[default]
    EarliestDeadlineFirst,
    /// Deadline-monotonic fixed priorities (smaller relative deadline =
    /// higher priority).
    DeadlineMonotonic,
    /// Rate-monotonic fixed priorities (smaller period = higher priority).
    RateMonotonic,
}

impl SchedulingPolicy {
    /// Short lowercase name (used in reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedulingPolicy::EarliestDeadlineFirst => "edf",
            SchedulingPolicy::DeadlineMonotonic => "dm",
            SchedulingPolicy::RateMonotonic => "rm",
        }
    }

    /// Picks the index (within `ready`) of the job to execute next, or
    /// `None` if no job is ready.
    ///
    /// Ties are broken by earliest release, then lowest task index, making
    /// the simulation fully deterministic.
    #[must_use]
    pub fn select(self, task_set: &TaskSet, ready: &[Job]) -> Option<usize> {
        ready
            .iter()
            .enumerate()
            .min_by_key(|(_, job)| {
                let primary = match self {
                    SchedulingPolicy::EarliestDeadlineFirst => job.absolute_deadline.as_u64(),
                    SchedulingPolicy::DeadlineMonotonic => {
                        task_set[job.task_index].deadline().as_u64()
                    }
                    SchedulingPolicy::RateMonotonic => task_set[job.task_index].period().as_u64(),
                };
                (primary, job.release.as_u64(), job.task_index)
            })
            .map(|(idx, _)| idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edf_model::{Task, Time};

    fn ts() -> TaskSet {
        TaskSet::from_tasks(vec![
            Task::from_ticks(1, 10, 20).unwrap(),
            Task::from_ticks(1, 30, 12).unwrap(),
        ])
    }

    #[test]
    fn names() {
        assert_eq!(SchedulingPolicy::EarliestDeadlineFirst.name(), "edf");
        assert_eq!(SchedulingPolicy::DeadlineMonotonic.name(), "dm");
        assert_eq!(SchedulingPolicy::RateMonotonic.name(), "rm");
        assert_eq!(
            SchedulingPolicy::default(),
            SchedulingPolicy::EarliestDeadlineFirst
        );
    }

    #[test]
    fn empty_ready_queue_selects_nothing() {
        assert_eq!(
            SchedulingPolicy::EarliestDeadlineFirst.select(&ts(), &[]),
            None
        );
    }

    #[test]
    fn edf_picks_earliest_absolute_deadline() {
        let ready = vec![
            Job::new(0, 0, Time::ZERO, Time::new(10), Time::new(1)),
            Job::new(1, 0, Time::ZERO, Time::new(8), Time::new(1)),
        ];
        assert_eq!(
            SchedulingPolicy::EarliestDeadlineFirst.select(&ts(), &ready),
            Some(1)
        );
    }

    #[test]
    fn dm_and_rm_use_static_parameters() {
        // Task 0: D=10, T=20; task 1: D=30, T=12.
        let ready = vec![
            Job::new(0, 0, Time::ZERO, Time::new(10), Time::new(1)),
            Job::new(1, 0, Time::ZERO, Time::new(5), Time::new(1)),
        ];
        // DM: task 0 wins (smaller relative deadline) even though task 1's
        // absolute deadline is earlier.
        assert_eq!(
            SchedulingPolicy::DeadlineMonotonic.select(&ts(), &ready),
            Some(0)
        );
        // RM: task 1 wins (smaller period).
        assert_eq!(
            SchedulingPolicy::RateMonotonic.select(&ts(), &ready),
            Some(1)
        );
    }

    #[test]
    fn ties_break_deterministically() {
        let ready = vec![
            Job::new(1, 0, Time::new(2), Time::new(10), Time::new(1)),
            Job::new(0, 0, Time::new(2), Time::new(10), Time::new(1)),
        ];
        // Same deadline and release: lowest task index wins.
        assert_eq!(
            SchedulingPolicy::EarliestDeadlineFirst.select(&ts(), &ready),
            Some(1)
        );
    }
}
