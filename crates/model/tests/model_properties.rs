//! Property-based tests of the task / task-set / event-stream model.

use edf_model::{EventStream, EventStreamTask, Task, TaskSet, Time};
use proptest::prelude::*;

/// Strategy producing a valid task with bounded parameters.
fn arb_task() -> impl Strategy<Value = Task> {
    (1u64..=1_000, 1u64..=10_000, 1u64..=10_000).prop_filter_map(
        "wcet must not exceed period",
        |(c, d, t)| {
            let c = c.min(t);
            Task::from_ticks(c, d, t).ok()
        },
    )
}

fn arb_task_set(max_len: usize) -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(arb_task(), 1..=max_len).prop_map(TaskSet::from_tasks)
}

proptest! {
    #[test]
    fn task_utilization_at_most_one(task in arb_task()) {
        prop_assert!(task.utilization() <= 1.0 + 1e-12);
        prop_assert!(task.utilization() > 0.0);
    }

    #[test]
    fn task_gap_in_unit_interval(task in arb_task()) {
        let gap = task.deadline_gap();
        prop_assert!((0.0..=1.0).contains(&gap));
    }

    #[test]
    fn job_deadlines_strictly_increase(task in arb_task(), k in 0u64..1_000) {
        let d0 = task.job_deadline(k).unwrap();
        let d1 = task.job_deadline(k + 1).unwrap();
        prop_assert!(d1 > d0);
        prop_assert_eq!(d1 - d0, task.period());
    }

    #[test]
    fn utilization_exact_and_float_agree(ts in arb_task_set(12)) {
        let float = ts.utilization();
        let exceeds = ts.utilization_exceeds_one();
        // The two views must agree away from the boundary.
        if float > 1.0 + 1e-6 {
            prop_assert!(exceeds);
        }
        if float < 1.0 - 1e-6 {
            prop_assert!(!exceeds);
        }
    }

    #[test]
    fn hyperperiod_is_multiple_of_every_period(ts in arb_task_set(8)) {
        if let Some(h) = ts.hyperperiod() {
            for task in &ts {
                prop_assert!(h % task.period() == Time::ZERO);
            }
        }
    }

    #[test]
    fn sorting_preserves_multiset(ts in arb_task_set(10)) {
        let sorted = ts.sorted_by_deadline();
        prop_assert_eq!(sorted.len(), ts.len());
        let mut a: Vec<_> = ts.iter().map(|t| (t.wcet(), t.deadline(), t.period())).collect();
        let mut b: Vec<_> = sorted.iter().map(|t| (t.wcet(), t.deadline(), t.period())).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        // And the ordering is correct.
        for w in sorted.tasks().windows(2) {
            prop_assert!(w[0].deadline() <= w[1].deadline());
        }
    }

    #[test]
    fn eta_is_monotone(period in 1u64..1_000, len in 1u64..5, inner in 1u64..50, i in 0u64..5_000) {
        let stream = EventStream::bursty(len, Time::new(inner), Time::new(period));
        let a = stream.eta(Time::new(i));
        let b = stream.eta(Time::new(i + 1));
        prop_assert!(b >= a);
    }

    #[test]
    fn event_stream_dbf_monotone_and_bounded(period in 2u64..500, c in 1u64..20, d in 1u64..100, i in 0u64..10_000) {
        let task = EventStreamTask::new(
            EventStream::periodic(Time::new(period)),
            Time::new(c),
            Time::new(d),
        ).unwrap();
        let a = task.dbf(Time::new(i));
        let b = task.dbf(Time::new(i + 1));
        prop_assert!(b >= a);
        // A periodic stream's dbf matches the sporadic task dbf formula.
        let expected = if i >= d { ((i - d) / period + 1) * c } else { 0 };
        prop_assert_eq!(a.as_u64(), expected);
    }
}

#[test]
fn task_set_roundtrip_from_iterator() {
    let tasks = vec![
        Task::from_ticks(1, 5, 10).unwrap(),
        Task::from_ticks(2, 8, 16).unwrap(),
    ];
    let ts: TaskSet = tasks.clone().into_iter().collect();
    assert_eq!(ts.tasks(), tasks.as_slice());
}
