//! Offset-based transactions: tasks sharing a period with fixed offsets.
//!
//! A *transaction* models a group of activities triggered by one recurring
//! event — a message sequence, a multi-stage control loop — where every
//! part executes a fixed time after the transaction's release.  All parts
//! share the transaction period `T`; part `j` is released `oⱼ` time units
//! after the transaction and must finish within its own relative deadline.
//!
//! Under EDF the worst-case demand of an offset transaction is **not** the
//! synchronous release of all parts (offsets forbid that alignment).  The
//! standard critical-instant argument applies instead: the demand of a
//! window is maximized when the window starts at the release of *some*
//! part `c`, which shifts part `j` to the phase `(oⱼ − o_c) mod T`.  Each
//! choice of `c` is a *critical-instant candidate*; exact analysis checks
//! every candidate, while dropping the offsets (all parts synchronous)
//! yields a cheap conservative over-approximation.  The decompositions and
//! candidate analysis live in `edf-analysis` (`workload` and
//! `transactions` modules); this module provides the validated data model.
//!
//! # Examples
//!
//! ```
//! use edf_model::{Time, Transaction, TransactionPart};
//!
//! # fn main() -> Result<(), edf_model::TransactionError> {
//! let transaction = Transaction::new(
//!     Time::new(20),
//!     vec![
//!         TransactionPart::new(Time::new(0), Time::new(2), Time::new(5)),
//!         TransactionPart::new(Time::new(8), Time::new(3), Time::new(6)),
//!     ],
//! )?;
//! assert_eq!(transaction.len(), 2);
//! assert!((transaction.utilization() - 0.25).abs() < 1e-12);
//! // Candidate 1 re-phases part 0 to offset (0 − 8) mod 20 = 12.
//! assert_eq!(transaction.candidate_phase(1, 0), Time::new(12));
//! # Ok(())
//! # }
//! ```

use core::fmt;

use crate::task_set::TaskSet;
use crate::time::Time;

/// Errors produced when constructing transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransactionError {
    /// The transaction period is zero.
    ZeroPeriod,
    /// The transaction contains no parts.
    EmptyTransaction,
    /// A part's execution time is zero.
    ZeroWcet,
    /// A part's relative deadline is zero.
    ZeroDeadline,
    /// A part's offset is not strictly below the transaction period.
    OffsetOutOfRange,
}

impl fmt::Display for TransactionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransactionError::ZeroPeriod => write!(f, "transaction period must be positive"),
            TransactionError::EmptyTransaction => {
                write!(f, "transaction must contain at least one part")
            }
            TransactionError::ZeroWcet => write!(f, "part execution time must be positive"),
            TransactionError::ZeroDeadline => write!(f, "part relative deadline must be positive"),
            TransactionError::OffsetOutOfRange => {
                write!(
                    f,
                    "part offset must be strictly below the transaction period"
                )
            }
        }
    }
}

impl std::error::Error for TransactionError {}

/// One task of a [`Transaction`]: released `offset` time units after the
/// transaction, with its own execution time and relative deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransactionPart {
    offset: Time,
    wcet: Time,
    deadline: Time,
    name: Option<String>,
}

impl TransactionPart {
    /// Creates a part (validated when the owning [`Transaction`] is built).
    #[must_use]
    pub fn new(offset: Time, wcet: Time, deadline: Time) -> Self {
        TransactionPart {
            offset,
            wcet,
            deadline,
            name: None,
        }
    }

    /// Gives the part a human-readable name.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Release offset within the transaction.
    #[must_use]
    pub fn offset(&self) -> Time {
        self.offset
    }

    /// Execution time per instance.
    #[must_use]
    pub fn wcet(&self) -> Time {
        self.wcet
    }

    /// Relative deadline, measured from the part's own release.
    #[must_use]
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Optional name.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

impl fmt::Display for TransactionPart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = self.name.as_deref().unwrap_or("part");
        write!(
            f,
            "{label}(o={}, C={}, D={})",
            self.offset, self.wcet, self.deadline
        )
    }
}

/// A group of tasks sharing one period, each released at a fixed offset
/// after the transaction — recurring sporadically with minimal
/// inter-arrival `period` (the periodic pattern is the worst case).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transaction {
    period: Time,
    parts: Vec<TransactionPart>,
}

impl Transaction {
    /// Creates a transaction from its period and parts.
    ///
    /// # Errors
    ///
    /// Returns a [`TransactionError`] if the period is zero, the part list
    /// is empty, or any part has a zero execution time, a zero deadline, or
    /// an offset not strictly below the period.
    pub fn new(period: Time, parts: Vec<TransactionPart>) -> Result<Self, TransactionError> {
        if period.is_zero() {
            return Err(TransactionError::ZeroPeriod);
        }
        if parts.is_empty() {
            return Err(TransactionError::EmptyTransaction);
        }
        for part in &parts {
            if part.wcet.is_zero() {
                return Err(TransactionError::ZeroWcet);
            }
            if part.deadline.is_zero() {
                return Err(TransactionError::ZeroDeadline);
            }
            if part.offset >= period {
                return Err(TransactionError::OffsetOutOfRange);
            }
        }
        Ok(Transaction { period, parts })
    }

    /// The transaction period (minimal inter-arrival of instances).
    #[must_use]
    pub fn period(&self) -> Time {
        self.period
    }

    /// The parts, in construction order.
    #[must_use]
    pub fn parts(&self) -> &[TransactionPart] {
        &self.parts
    }

    /// Number of parts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// `true` if the transaction has no parts (never holds for validated
    /// transactions; present for API symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Long-run processor utilization `Σ Cⱼ / T`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.parts
            .iter()
            .map(|p| p.wcet.as_f64() / self.period.as_f64())
            .sum()
    }

    /// Number of critical-instant candidates (one per part).
    #[must_use]
    pub fn candidate_count(&self) -> usize {
        self.parts.len()
    }

    /// The phase of part `part` when the analysis window starts at the
    /// release of part `candidate`: `(o_part − o_candidate) mod T`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn candidate_phase(&self, candidate: usize, part: usize) -> Time {
        let anchor = self.parts[candidate].offset;
        let offset = self.parts[part].offset;
        if offset >= anchor {
            offset - anchor
        } else {
            self.period - (anchor - offset)
        }
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction(T={}, {} part(s))", self.period, self.len())
    }
}

/// A system combining independent sporadic tasks with offset transactions —
/// the transactional counterpart of a mixed system.
///
/// Transactions release independently of each other, so the worst-case
/// alignment picks one critical-instant candidate *per transaction*; the
/// exact analysis therefore enumerates the product of the per-transaction
/// candidates (see `edf-analysis`'s `transactions` module).
#[derive(Debug, Clone, PartialEq)]
pub struct TransactionSystem {
    sporadic: TaskSet,
    transactions: Vec<Transaction>,
}

impl TransactionSystem {
    /// Creates a system from its sporadic and transactional parts.
    #[must_use]
    pub fn new(sporadic: TaskSet, transactions: Vec<Transaction>) -> Self {
        TransactionSystem {
            sporadic,
            transactions,
        }
    }

    /// The sporadic part.
    #[must_use]
    pub fn sporadic(&self) -> &TaskSet {
        &self.sporadic
    }

    /// The transactions.
    #[must_use]
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Long-run processor utilization of the whole system.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.sporadic.utilization()
            + self
                .transactions
                .iter()
                .map(Transaction::utilization)
                .sum::<f64>()
    }

    /// Number of critical-instant candidate combinations (the product over
    /// the transactions), saturating at `usize::MAX`.
    ///
    /// The product is exponential in the number of transactions, so it can
    /// genuinely overflow; use [`TransactionSystem::candidate_count_checked`]
    /// when the distinction between "huge" and "astronomical" matters (e.g.
    /// before materializing anything proportional to the product).
    #[must_use]
    pub fn candidate_count(&self) -> usize {
        self.candidate_count_checked().unwrap_or(usize::MAX)
    }

    /// [`TransactionSystem::candidate_count`] without the saturation: `None`
    /// when the product overflows `usize`.
    #[must_use]
    pub fn candidate_count_checked(&self) -> Option<usize> {
        self.transactions
            .iter()
            .try_fold(1usize, |acc, t| acc.checked_mul(t.candidate_count()))
    }
}

impl fmt::Display for TransactionSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transaction system ({} sporadic task(s), {} transaction(s))",
            self.sporadic.len(),
            self.transactions.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;

    fn part(o: u64, c: u64, d: u64) -> TransactionPart {
        TransactionPart::new(Time::new(o), Time::new(c), Time::new(d))
    }

    #[test]
    fn construction_and_accessors() {
        let tr = Transaction::new(Time::new(20), vec![part(0, 2, 5), part(8, 3, 6)]).unwrap();
        assert_eq!(tr.period(), Time::new(20));
        assert_eq!(tr.len(), 2);
        assert!(!tr.is_empty());
        assert_eq!(tr.candidate_count(), 2);
        assert!((tr.utilization() - 0.25).abs() < 1e-12);
        assert_eq!(tr.parts()[1].offset(), Time::new(8));
        assert!(tr.to_string().contains("T=20"));
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            Transaction::new(Time::ZERO, vec![part(0, 1, 1)]),
            Err(TransactionError::ZeroPeriod)
        );
        assert_eq!(
            Transaction::new(Time::new(10), vec![]),
            Err(TransactionError::EmptyTransaction)
        );
        assert_eq!(
            Transaction::new(Time::new(10), vec![part(0, 0, 1)]),
            Err(TransactionError::ZeroWcet)
        );
        assert_eq!(
            Transaction::new(Time::new(10), vec![part(0, 1, 0)]),
            Err(TransactionError::ZeroDeadline)
        );
        assert_eq!(
            Transaction::new(Time::new(10), vec![part(10, 1, 1)]),
            Err(TransactionError::OffsetOutOfRange)
        );
        assert!(!TransactionError::OffsetOutOfRange.to_string().is_empty());
    }

    #[test]
    fn candidate_phases_wrap_modulo_the_period() {
        let tr = Transaction::new(
            Time::new(20),
            vec![part(0, 1, 4), part(8, 1, 4), part(15, 1, 4)],
        )
        .unwrap();
        // Window anchored at part 0: phases are the offsets themselves.
        assert_eq!(tr.candidate_phase(0, 0), Time::ZERO);
        assert_eq!(tr.candidate_phase(0, 1), Time::new(8));
        assert_eq!(tr.candidate_phase(0, 2), Time::new(15));
        // Anchored at part 1: part 0 wraps to 20 − 8 = 12.
        assert_eq!(tr.candidate_phase(1, 0), Time::new(12));
        assert_eq!(tr.candidate_phase(1, 1), Time::ZERO);
        assert_eq!(tr.candidate_phase(1, 2), Time::new(7));
        // Anchored at part 2: part 1 wraps to 20 − 7 = 13.
        assert_eq!(tr.candidate_phase(2, 1), Time::new(13));
    }

    #[test]
    fn part_naming_and_display() {
        let p = part(3, 1, 2).named("ignition");
        assert_eq!(p.name(), Some("ignition"));
        assert!(p.to_string().contains("ignition"));
        assert!(part(0, 1, 2).to_string().contains("part"));
    }

    #[test]
    fn system_utilization_and_candidates() {
        let sporadic = TaskSet::from_tasks(vec![Task::from_ticks(1, 4, 10).unwrap()]);
        let t1 = Transaction::new(Time::new(20), vec![part(0, 2, 5), part(8, 2, 5)]).unwrap();
        let t2 = Transaction::new(
            Time::new(10),
            vec![part(0, 1, 3), part(2, 1, 3), part(5, 1, 3)],
        )
        .unwrap();
        let system = TransactionSystem::new(sporadic, vec![t1, t2]);
        assert_eq!(system.candidate_count(), 6);
        assert!((system.utilization() - (0.1 + 0.2 + 0.3)).abs() < 1e-12);
        assert_eq!(system.sporadic().len(), 1);
        assert_eq!(system.transactions().len(), 2);
        assert!(system.to_string().contains("2 transaction"));
        let empty = TransactionSystem::new(TaskSet::new(), vec![]);
        assert_eq!(empty.candidate_count(), 1);
    }

    #[test]
    fn candidate_count_checked_detects_overflow() {
        let wide = Transaction::new(
            Time::new(1 << 14),
            (0..1 << 13).map(|o| part(o, 1, 1)).collect(),
        )
        .unwrap();
        // Five transactions of 2^13 candidates each: the product (2^65)
        // overflows usize on 64-bit targets.
        let system = TransactionSystem::new(TaskSet::new(), vec![wide; 5]);
        assert_eq!(system.candidate_count_checked(), None);
        assert_eq!(system.candidate_count(), usize::MAX);
        let small = TransactionSystem::new(
            TaskSet::new(),
            vec![Transaction::new(Time::new(10), vec![part(0, 1, 2), part(5, 1, 2)]).unwrap()],
        );
        assert_eq!(small.candidate_count_checked(), Some(2));
    }
}
