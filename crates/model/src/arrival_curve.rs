//! Arrival curves from real-time calculus.
//!
//! An *upper arrival curve* `η⁺(Δ)` bounds the number of events a stimulus
//! can produce in any time window of length `Δ`.  Real-time calculus
//! describes stimuli by piecewise-linear concave curves — the minimum of
//! affine pieces `b + Δ/d` ("after a burst of `b` events, at most one
//! event per `d` time units") — while implementations evaluate the integer
//! *staircase* `⌊η⁺(Δ)⌋`.
//!
//! This module represents arrival curves directly as staircases: a sum of
//! unit steps (re-using [`EventTuple`] as the step type), each contributing
//! `1 + ⌊(Δ − a)/z⌋` events.  The representation is closed under the two
//! conversions the analysis needs:
//!
//! * [`ArrivalCurve::from_affine_segments`] — the **exact** staircase of a
//!   piecewise-linear concave curve: events are enumerated until the
//!   long-run (largest-distance) piece dominates, after which the staircase
//!   is exactly periodic.  Because event counts are integral, flooring the
//!   concave curve loses nothing — the conversion is exact on staircases,
//!   not an approximation;
//! * [`ArrivalCurve::from_event_stream`] / [`ArrivalCurve::to_event_stream`]
//!   — a Gresser event stream *is* a staircase curve, so the round trip is
//!   exact and step-for-step structure preserving.
//!
//! [`ArrivalCurve::leaky_bucket_envelope`] computes the tightest single
//! affine piece `(b, d)` dominating the curve — the classical conservative
//! leaky-bucket abstraction used when the exact staircase has too many
//! steps to analyze cheaply.
//!
//! [`ArrivalCurveTask`] pairs a curve with a per-event execution demand and
//! relative deadline, exactly like [`EventStreamTask`]; its demand bound
//! function is `dbf(I) = C·η⁺(I − D)`.
//!
//! # Examples
//!
//! A leaky-bucket stimulus — at most 3 events at once, then one event per
//! 10 time units:
//!
//! ```
//! use edf_model::{AffineSegment, ArrivalCurve, Time};
//!
//! let curve = ArrivalCurve::from_affine_segments(&[AffineSegment::new(3, Time::new(10))])
//!     .expect("valid segments");
//! assert_eq!(curve.eta(Time::new(0)), 3);
//! assert_eq!(curve.eta(Time::new(9)), 3);
//! assert_eq!(curve.eta(Time::new(10)), 4);
//! ```
//!
//! A two-piece curve: a short-term rate of one event per 2 time units,
//! capped long-term at 4 events per 7 time units:
//!
//! ```
//! use edf_model::{AffineSegment, ArrivalCurve, Time};
//!
//! let curve = ArrivalCurve::from_affine_segments(&[
//!     AffineSegment::new(1, Time::new(2)),
//!     AffineSegment::new(4, Time::new(7)),
//! ])
//! .expect("valid segments");
//! // The curve is the pointwise minimum of the two pieces.
//! assert_eq!(curve.eta(Time::new(4)), 3); // 1 + ⌊4/2⌋
//! assert_eq!(curve.eta(Time::new(14)), 6); // 4 + ⌊14/7⌋
//! ```

use core::fmt;

use crate::event_stream::{EventStream, EventStreamError, EventStreamTask, EventTuple};
use crate::time::Time;

/// Hard cap on the number of staircase steps
/// [`ArrivalCurve::from_affine_segments`] will enumerate before the
/// long-run piece takes over.  Curves needing more steps would also need
/// that many demand components per task, so the constructor refuses them.
pub const MAX_PREFIX_STEPS: usize = 4_096;

/// Cap on the number of events enumerated while fitting the
/// [`ArrivalCurve::leaky_bucket_envelope`]; curves whose verification
/// window contains more events report no envelope.
const MAX_ENVELOPE_EVENTS: u128 = 1 << 16;

/// One affine piece `Δ ↦ burst + ⌊Δ/distance⌋` of a piecewise-linear upper
/// arrival curve ("`burst` events at once, then one per `distance`").
///
/// # Examples
///
/// ```
/// use edf_model::{AffineSegment, Time};
///
/// let piece = AffineSegment::new(2, Time::new(5));
/// assert_eq!(piece.bound(Time::new(0)), 2);
/// assert_eq!(piece.bound(Time::new(14)), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AffineSegment {
    /// Instantaneous burst allowance `b`.
    pub burst: u64,
    /// Long-run inter-event distance `d` of this piece.
    pub distance: Time,
}

impl AffineSegment {
    /// Creates the piece `Δ ↦ burst + ⌊Δ/distance⌋`.
    #[must_use]
    pub fn new(burst: u64, distance: Time) -> Self {
        AffineSegment { burst, distance }
    }

    /// The event bound of this piece alone at window length `interval`.
    #[must_use]
    pub fn bound(&self, interval: Time) -> u64 {
        self.burst.saturating_add(interval.div_floor(self.distance))
    }

    /// The earliest window length whose bound reaches `k` events (the
    /// `k`-th event offset of this piece's staircase), saturating.
    #[must_use]
    fn kth_event_offset(&self, k: u64) -> Time {
        if k <= self.burst {
            Time::ZERO
        } else {
            self.distance.saturating_mul(k - self.burst)
        }
    }
}

impl fmt::Display for AffineSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + Δ/{}", self.burst, self.distance)
    }
}

/// Errors produced when constructing arrival curves or arrival-curve tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArrivalCurveError {
    /// The curve has no steps / no affine segments.
    EmptyCurve,
    /// An affine segment has a zero distance (infinite rate).
    ZeroDistance,
    /// A repeating step has a zero cycle.
    ZeroCycle,
    /// The staircase prefix exceeds [`MAX_PREFIX_STEPS`] before the
    /// long-run segment takes over.
    PrefixTooLong,
    /// The per-event execution time is zero.
    ZeroWcet,
    /// The relative deadline is zero.
    ZeroDeadline,
}

impl fmt::Display for ArrivalCurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalCurveError::EmptyCurve => {
                write!(f, "arrival curve must contain at least one step or segment")
            }
            ArrivalCurveError::ZeroDistance => {
                write!(f, "affine segment must have a positive distance")
            }
            ArrivalCurveError::ZeroCycle => {
                write!(f, "repeating curve step must have a positive cycle")
            }
            ArrivalCurveError::PrefixTooLong => write!(
                f,
                "staircase prefix exceeds {MAX_PREFIX_STEPS} steps before the long-run \
                 segment dominates"
            ),
            ArrivalCurveError::ZeroWcet => write!(f, "per-event execution time must be positive"),
            ArrivalCurveError::ZeroDeadline => write!(f, "relative deadline must be positive"),
        }
    }
}

impl std::error::Error for ArrivalCurveError {}

/// A staircase upper arrival curve `η⁺(Δ)`: the sum of unit steps, each an
/// [`EventTuple`] `(z, a)` contributing `1 + ⌊(Δ − a)/z⌋` events (or a
/// single event for one-shot steps).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArrivalCurve {
    steps: Vec<EventTuple>,
}

impl ArrivalCurve {
    /// Creates a staircase curve directly from its steps.
    ///
    /// # Errors
    ///
    /// Returns [`ArrivalCurveError::EmptyCurve`] if `steps` is empty and
    /// [`ArrivalCurveError::ZeroCycle`] if a repeating step has cycle 0.
    pub fn new(steps: Vec<EventTuple>) -> Result<Self, ArrivalCurveError> {
        if steps.is_empty() {
            return Err(ArrivalCurveError::EmptyCurve);
        }
        if steps
            .iter()
            .any(|s| matches!(s.cycle, Some(z) if z.is_zero()))
        {
            return Err(ArrivalCurveError::ZeroCycle);
        }
        Ok(ArrivalCurve { steps })
    }

    /// The curve of a strictly periodic stimulus: `η⁺(Δ) = 1 + ⌊Δ/period⌋`.
    #[must_use]
    pub fn periodic(period: Time) -> Self {
        ArrivalCurve {
            steps: vec![EventTuple::periodic(period, Time::ZERO)],
        }
    }

    /// The **exact** staircase of the piecewise-linear concave curve
    /// `η⁺(Δ) = minᵢ (bᵢ + ⌊Δ/dᵢ⌋)`.
    ///
    /// The `k`-th event of the staircase occurs at
    /// `tₖ = maxᵢ (k − bᵢ)⁺·dᵢ`; events are enumerated until the
    /// largest-distance (smallest-rate) piece supplies the maximum with its
    /// burst exhausted — from then on the staircase is exactly periodic
    /// with that piece's distance, so the enumeration terminates with one
    /// repeating step.  Because `minᵢ ⌊fᵢ⌋ = ⌊minᵢ fᵢ⌋` for non-decreasing
    /// pieces, the result reproduces the segment minimum exactly at every
    /// integer window length — no approximation is involved.
    ///
    /// # Errors
    ///
    /// Returns [`ArrivalCurveError::EmptyCurve`] for an empty segment list,
    /// [`ArrivalCurveError::ZeroDistance`] if a segment has distance 0, and
    /// [`ArrivalCurveError::PrefixTooLong`] if more than
    /// [`MAX_PREFIX_STEPS`] events precede the periodic tail.
    pub fn from_affine_segments(segments: &[AffineSegment]) -> Result<Self, ArrivalCurveError> {
        if segments.is_empty() {
            return Err(ArrivalCurveError::EmptyCurve);
        }
        if segments.iter().any(|s| s.distance.is_zero()) {
            return Err(ArrivalCurveError::ZeroDistance);
        }
        // The long-run winner: largest distance, ties broken by smallest
        // burst (the pointwise-smaller piece).
        let dominant = *segments
            .iter()
            .max_by(|a, b| a.distance.cmp(&b.distance).then(b.burst.cmp(&a.burst)))
            .expect("segments are non-empty");

        let mut steps = Vec::new();
        let mut k: u64 = 1;
        loop {
            let offset = segments
                .iter()
                .map(|s| s.kth_event_offset(k))
                .max()
                .expect("segments are non-empty");
            // Once the dominant piece's burst is exhausted it grows by the
            // largest per-event distance, so supplying the maximum now
            // means supplying it for every later event as well: the
            // staircase is periodic from here on.
            if k > dominant.burst && dominant.kth_event_offset(k) == offset {
                steps.push(EventTuple::periodic(dominant.distance, offset));
                return ArrivalCurve::new(steps);
            }
            if steps.len() >= MAX_PREFIX_STEPS {
                return Err(ArrivalCurveError::PrefixTooLong);
            }
            steps.push(EventTuple::single(offset));
            k += 1;
        }
    }

    /// The arrival curve of a Gresser [`EventStream`] — exact and
    /// step-for-step structure preserving (a stream tuple *is* a staircase
    /// step).
    #[must_use]
    pub fn from_event_stream(stream: &EventStream) -> Self {
        ArrivalCurve {
            steps: stream.tuples().to_vec(),
        }
    }

    /// The inverse of [`ArrivalCurve::from_event_stream`].
    #[must_use]
    pub fn to_event_stream(&self) -> EventStream {
        EventStream::new(self.steps.clone()).expect("curve steps are valid stream tuples")
    }

    /// The staircase steps of this curve.
    #[must_use]
    pub fn steps(&self) -> &[EventTuple] {
        &self.steps
    }

    /// The event bound `η⁺(Δ)` at window length `interval`.
    #[must_use]
    pub fn eta(&self, interval: Time) -> u64 {
        self.steps.iter().map(|s| s.events_in(interval)).sum()
    }

    /// The long-run event rate contributed by the repeating steps.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.steps
            .iter()
            .filter_map(|s| s.cycle)
            .map(|z| 1.0 / z.as_f64())
            .sum()
    }

    /// The tightest single affine piece `(b, d)` with
    /// `b + ⌊Δ/d⌋ ≥ η⁺(Δ)` for every `Δ` — the classical conservative
    /// leaky-bucket abstraction of the curve.
    ///
    /// `d` is the largest integer distance not slower than the curve's
    /// long-run rate (`d = ⌊L/E⌋` for `L` the cycle hyperperiod and `E` the
    /// events per hyperperiod); `b` is fitted over one verification window
    /// `[0, max offset + L]`, which suffices because beyond it both sides
    /// repeat with `η⁺` gaining `E ≤ ⌊L/d⌋` events per `L`.
    ///
    /// Returns `None` when no conservative bucket exists or is practical:
    /// the curve has no repeating step, its rate is at least one event per
    /// time unit (`d` would be 0), the hyperperiod overflows, or the
    /// verification window holds too many events to enumerate.
    #[must_use]
    pub fn leaky_bucket_envelope(&self) -> Option<AffineSegment> {
        let cycles: Vec<Time> = self.steps.iter().filter_map(|s| s.cycle).collect();
        if cycles.is_empty() {
            return None;
        }
        let hyperperiod = cycles.iter().try_fold(Time::ONE, |acc, &z| acc.lcm(z))?;
        let events_per_l: u128 = cycles
            .iter()
            .map(|z| hyperperiod.as_u128() / z.as_u128())
            .sum();
        let distance = hyperperiod.as_u128() / events_per_l;
        if distance == 0 {
            return None;
        }
        let distance = Time::new(u64::try_from(distance).ok()?);

        let max_offset = self
            .steps
            .iter()
            .map(|s| s.offset)
            .max()
            .expect("curve is non-empty");
        let window = max_offset.checked_add(hyperperiod)?;
        let total_events: u128 = self
            .steps
            .iter()
            .map(|s| u128::from(s.events_in(window)))
            .sum();
        if total_events > MAX_ENVELOPE_EVENTS {
            return None;
        }

        let mut offsets: Vec<Time> = Vec::with_capacity(total_events as usize);
        for step in &self.steps {
            let mut at = step.offset;
            loop {
                if at > window {
                    break;
                }
                offsets.push(at);
                match step.cycle {
                    Some(z) => match at.checked_add(z) {
                        Some(next) => at = next,
                        None => break,
                    },
                    None => break,
                }
            }
        }
        offsets.sort_unstable();
        let mut burst: u64 = 0;
        for (index, at) in offsets.iter().enumerate() {
            let events = index as u64 + 1;
            burst = burst.max(events.saturating_sub(at.div_floor(distance)));
        }
        Some(AffineSegment::new(burst, distance))
    }
}

impl fmt::Display for ArrivalCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arrival curve with {} step(s)", self.steps.len())
    }
}

/// How an [`ArrivalCurveTask`] is decomposed for analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CurveDecomposition {
    /// One demand component per staircase step — demand is reproduced
    /// exactly, so exact feasibility tests stay exact.
    #[default]
    Exact,
    /// Decompose the [`ArrivalCurve::leaky_bucket_envelope`] instead —
    /// `O(burst)` components regardless of the staircase size.  Demand is
    /// over-approximated, so *feasible* verdicts remain sound while
    /// rejections are demoted to *unknown* by the analysis (the exact
    /// tests turn into sufficient ones).  Falls back to the exact
    /// decomposition when no envelope exists.
    Conservative,
}

/// A task activated by an [`ArrivalCurve`]: every event requires `wcet`
/// execution time and must finish within `deadline` of its occurrence —
/// the arrival-curve counterpart of [`EventStreamTask`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArrivalCurveTask {
    curve: ArrivalCurve,
    wcet: Time,
    deadline: Time,
    decomposition: CurveDecomposition,
    name: Option<String>,
}

impl ArrivalCurveTask {
    /// Creates an arrival-curve task with the exact decomposition.
    ///
    /// # Errors
    ///
    /// Returns an [`ArrivalCurveError`] if `wcet` or `deadline` is zero.
    pub fn new(curve: ArrivalCurve, wcet: Time, deadline: Time) -> Result<Self, ArrivalCurveError> {
        if wcet.is_zero() {
            return Err(ArrivalCurveError::ZeroWcet);
        }
        if deadline.is_zero() {
            return Err(ArrivalCurveError::ZeroDeadline);
        }
        Ok(ArrivalCurveTask {
            curve,
            wcet,
            deadline,
            decomposition: CurveDecomposition::Exact,
            name: None,
        })
    }

    /// Switches the task to the conservative leaky-bucket decomposition.
    #[must_use]
    pub fn conservative(mut self) -> Self {
        self.decomposition = CurveDecomposition::Conservative;
        self
    }

    /// Gives the task a human-readable name.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// The task equivalent to an [`EventStreamTask`] — same demand, same
    /// decomposition structure, so every analysis gives the same answer.
    #[must_use]
    pub fn from_event_stream_task(task: &EventStreamTask) -> Self {
        let converted = ArrivalCurveTask {
            curve: ArrivalCurve::from_event_stream(task.stream()),
            wcet: task.wcet(),
            deadline: task.deadline(),
            decomposition: CurveDecomposition::Exact,
            name: task.name().map(str::to_owned),
        };
        debug_assert!(!converted.wcet.is_zero() && !converted.deadline.is_zero());
        converted
    }

    /// The inverse of [`ArrivalCurveTask::from_event_stream_task`].
    ///
    /// # Errors
    ///
    /// Returns an [`EventStreamError`] if the parameters are rejected by
    /// the stream constructor (cannot happen for validated tasks).
    pub fn to_event_stream_task(&self) -> Result<EventStreamTask, EventStreamError> {
        let task = EventStreamTask::new(self.curve.to_event_stream(), self.wcet, self.deadline)?;
        Ok(match &self.name {
            Some(name) => task.named(name.clone()),
            None => task,
        })
    }

    /// The activating arrival curve.
    #[must_use]
    pub fn curve(&self) -> &ArrivalCurve {
        &self.curve
    }

    /// Execution demand per event.
    #[must_use]
    pub fn wcet(&self) -> Time {
        self.wcet
    }

    /// Relative deadline per event.
    #[must_use]
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// The configured decomposition mode.
    #[must_use]
    pub fn decomposition(&self) -> CurveDecomposition {
        self.decomposition
    }

    /// Optional name.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Long-run processor utilization of this task.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.curve.rate() * self.wcet.as_f64()
    }

    /// Demand bound function `dbf(I) = C·η⁺(I − D)` for `I ≥ D`, 0 below.
    #[must_use]
    pub fn dbf(&self, interval: Time) -> Time {
        if interval < self.deadline {
            return Time::ZERO;
        }
        let events = self.curve.eta(interval - self.deadline);
        self.wcet.saturating_mul(events)
    }
}

impl fmt::Display for ArrivalCurveTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = self.name.as_deref().unwrap_or("curve-task");
        write!(
            f,
            "{label}(C={}, D={}, {})",
            self.wcet, self.deadline, self.curve
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(segments: &[(u64, u64)]) -> ArrivalCurve {
        let segments: Vec<AffineSegment> = segments
            .iter()
            .map(|&(b, d)| AffineSegment::new(b, Time::new(d)))
            .collect();
        ArrivalCurve::from_affine_segments(&segments).expect("valid segments")
    }

    #[test]
    fn single_segment_staircase_is_exact() {
        let c = curve(&[(3, 10)]);
        for i in 0..100u64 {
            assert_eq!(c.eta(Time::new(i)), 3 + i / 10, "at {i}");
        }
        // 3 burst one-shots at 0, one periodic step.
        assert_eq!(c.steps().len(), 4);
        assert_eq!(c.steps().iter().filter(|s| s.cycle.is_some()).count(), 1);
    }

    #[test]
    fn multi_segment_staircase_matches_the_minimum() {
        for segments in [
            vec![(1u64, 2u64), (4, 7)],
            vec![(5, 2), (1, 6)],
            vec![(2, 3), (3, 5), (6, 11)],
            vec![(0, 4), (2, 9)],
            vec![(1, 10), (2, 10)],
        ] {
            let c = curve(&segments);
            for i in 0..200u64 {
                let expected = segments
                    .iter()
                    .map(|&(b, d)| b + i / d)
                    .min()
                    .expect("non-empty");
                assert_eq!(c.eta(Time::new(i)), expected, "at {i} for {segments:?}");
            }
        }
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            ArrivalCurve::from_affine_segments(&[]),
            Err(ArrivalCurveError::EmptyCurve)
        );
        assert_eq!(
            ArrivalCurve::from_affine_segments(&[AffineSegment::new(1, Time::ZERO)]),
            Err(ArrivalCurveError::ZeroDistance)
        );
        assert_eq!(
            ArrivalCurve::from_affine_segments(&[AffineSegment::new(1_000_000, Time::new(2))]),
            Err(ArrivalCurveError::PrefixTooLong)
        );
        assert_eq!(
            ArrivalCurve::new(vec![]),
            Err(ArrivalCurveError::EmptyCurve)
        );
        assert_eq!(
            ArrivalCurve::new(vec![EventTuple::periodic(Time::ZERO, Time::ZERO)]),
            Err(ArrivalCurveError::ZeroCycle)
        );
        let c = ArrivalCurve::periodic(Time::new(10));
        assert_eq!(
            ArrivalCurveTask::new(c.clone(), Time::ZERO, Time::ONE),
            Err(ArrivalCurveError::ZeroWcet)
        );
        assert_eq!(
            ArrivalCurveTask::new(c, Time::ONE, Time::ZERO),
            Err(ArrivalCurveError::ZeroDeadline)
        );
        assert!(!ArrivalCurveError::PrefixTooLong.to_string().is_empty());
    }

    #[test]
    fn event_stream_round_trip_is_exact() {
        let stream = EventStream::bursty(3, Time::new(5), Time::new(100));
        let c = ArrivalCurve::from_event_stream(&stream);
        for i in 0..300u64 {
            assert_eq!(c.eta(Time::new(i)), stream.eta(Time::new(i)), "at {i}");
        }
        assert_eq!(c.to_event_stream(), stream);
        assert!((c.rate() - stream.rate()).abs() < 1e-12);
    }

    #[test]
    fn leaky_bucket_envelope_dominates_the_curve() {
        for c in [
            ArrivalCurve::from_event_stream(&EventStream::bursty(3, Time::new(2), Time::new(20))),
            curve(&[(1, 2), (4, 7)]),
            ArrivalCurve::periodic(Time::new(9)),
            ArrivalCurve::new(vec![
                EventTuple::periodic(Time::new(6), Time::new(1)),
                EventTuple::periodic(Time::new(15), Time::new(4)),
                EventTuple::single(Time::new(3)),
            ])
            .unwrap(),
        ] {
            let envelope = c.leaky_bucket_envelope().expect("envelope exists");
            for i in 0..400u64 {
                let i = Time::new(i);
                assert!(
                    envelope.bound(i) >= c.eta(i),
                    "envelope {envelope} below curve at {i}"
                );
            }
        }
    }

    #[test]
    fn envelope_absent_without_repeating_steps_or_at_full_rate() {
        let one_shot = ArrivalCurve::new(vec![EventTuple::single(Time::new(4))]).unwrap();
        assert_eq!(one_shot.leaky_bucket_envelope(), None);
        // Two events per time unit: no integer distance can keep up.
        let dense = ArrivalCurve::new(vec![
            EventTuple::periodic(Time::ONE, Time::ZERO),
            EventTuple::periodic(Time::ONE, Time::ZERO),
        ])
        .unwrap();
        assert_eq!(dense.leaky_bucket_envelope(), None);
    }

    #[test]
    fn task_dbf_shifts_by_deadline_and_matches_stream_twin() {
        let stream = EventStream::bursty(2, Time::new(3), Time::new(30));
        let stream_task = EventStreamTask::new(stream, Time::new(2), Time::new(8))
            .unwrap()
            .named("rx");
        let curve_task = ArrivalCurveTask::from_event_stream_task(&stream_task);
        assert_eq!(curve_task.name(), Some("rx"));
        for i in 0..150u64 {
            let i = Time::new(i);
            assert_eq!(curve_task.dbf(i), stream_task.dbf(i), "at {i}");
        }
        assert!((curve_task.utilization() - stream_task.utilization()).abs() < 1e-12);
        let back = curve_task.to_event_stream_task().unwrap();
        assert_eq!(back, stream_task);
    }

    #[test]
    fn decomposition_mode_and_display() {
        let task = ArrivalCurveTask::new(
            ArrivalCurve::periodic(Time::new(12)),
            Time::new(2),
            Time::new(6),
        )
        .unwrap();
        assert_eq!(task.decomposition(), CurveDecomposition::Exact);
        let conservative = task.clone().conservative().named("bucketed");
        assert_eq!(
            conservative.decomposition(),
            CurveDecomposition::Conservative
        );
        assert!(conservative.to_string().contains("bucketed"));
        assert!(task.to_string().contains("curve-task"));
        assert!(ArrivalCurve::periodic(Time::new(3))
            .to_string()
            .contains("1 step"));
        assert!(AffineSegment::new(2, Time::new(5))
            .to_string()
            .contains('2'));
    }
}
