//! The sporadic task abstraction of the analysis model (§2 of the paper).
//!
//! A sporadic task `τ` is described by
//!
//! * a worst-case execution time `C` ([`Task::wcet`]),
//! * a relative deadline `D` measured from the release time
//!   ([`Task::deadline`]),
//! * a minimum inter-arrival distance (period) `T` ([`Task::period`]), and
//! * an initial release time / phase `φ` ([`Task::phase`], only relevant for
//!   simulation of asynchronous arrival patterns — the feasibility tests of
//!   this workspace analyse the synchronous case, which is the critical one).
//!
//! # Examples
//!
//! ```
//! use edf_model::{Task, Time};
//!
//! # fn main() -> Result<(), edf_model::TaskError> {
//! let tau = Task::new(Time::new(2), Time::new(8), Time::new(10))?;
//! assert_eq!(tau.wcet(), Time::new(2));
//! assert!(tau.is_constrained_deadline());
//! assert!((tau.utilization() - 0.2).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use core::fmt;

use crate::time::Time;

/// Errors produced when constructing or validating a [`Task`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TaskError {
    /// The worst-case execution time is zero.
    ZeroWcet,
    /// The relative deadline is zero.
    ZeroDeadline,
    /// The period (minimum inter-arrival time) is zero.
    ZeroPeriod,
    /// The worst-case execution time exceeds the period, so a single task
    /// already overloads the processor (`C > T` implies `U > 1`).
    WcetExceedsPeriod {
        /// Offending worst-case execution time.
        wcet: Time,
        /// Period it exceeds.
        period: Time,
    },
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::ZeroWcet => write!(f, "worst-case execution time must be positive"),
            TaskError::ZeroDeadline => write!(f, "relative deadline must be positive"),
            TaskError::ZeroPeriod => write!(f, "period must be positive"),
            TaskError::WcetExceedsPeriod { wcet, period } => write!(
                f,
                "worst-case execution time {wcet} exceeds period {period} (task alone overloads the processor)"
            ),
        }
    }
}

impl std::error::Error for TaskError {}

/// A sporadic (or, with `phase`, periodic) real-time task.
///
/// Invariants enforced at construction:
///
/// * `wcet > 0`, `deadline > 0`, `period > 0`;
/// * `wcet ≤ period` (otherwise the task alone exceeds the processor
///   capacity and every analysis trivially rejects — constructing such a
///   task is almost always a modelling error).
///
/// Note that `wcet > deadline` **is** allowed: such a task is trivially
/// unschedulable and the exact tests must report that correctly, which the
/// test-suite exercises.
///
/// # Examples
///
/// ```
/// use edf_model::{Task, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// // A task with an implicit deadline (D = T).
/// let tau = Task::with_implicit_deadline(Time::new(3), Time::new(12))?;
/// assert_eq!(tau.deadline(), tau.period());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Task {
    wcet: Time,
    deadline: Time,
    period: Time,
    phase: Time,
    name: Option<String>,
}

impl Task {
    /// Creates a task from its worst-case execution time, relative deadline
    /// and period, with phase 0 and no name.
    ///
    /// # Errors
    ///
    /// Returns a [`TaskError`] if any parameter is zero or if
    /// `wcet > period`.
    ///
    /// # Examples
    ///
    /// ```
    /// use edf_model::{Task, Time};
    /// # fn main() -> Result<(), edf_model::TaskError> {
    /// let tau = Task::new(Time::new(1), Time::new(4), Time::new(5))?;
    /// assert_eq!(tau.period(), Time::new(5));
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(wcet: Time, deadline: Time, period: Time) -> Result<Self, TaskError> {
        TaskBuilder::new(wcet, deadline, period).build()
    }

    /// Creates a task whose relative deadline equals its period
    /// (the Liu & Layland model of §3.1).
    ///
    /// # Errors
    ///
    /// Returns a [`TaskError`] if a parameter is zero or `wcet > period`.
    pub fn with_implicit_deadline(wcet: Time, period: Time) -> Result<Self, TaskError> {
        Task::new(wcet, period, period)
    }

    /// Convenience constructor from raw `u64` ticks.
    ///
    /// # Errors
    ///
    /// Same as [`Task::new`].
    pub fn from_ticks(wcet: u64, deadline: u64, period: u64) -> Result<Self, TaskError> {
        Task::new(Time::new(wcet), Time::new(deadline), Time::new(period))
    }

    /// Worst-case execution time `C`.
    #[inline]
    #[must_use]
    pub fn wcet(&self) -> Time {
        self.wcet
    }

    /// Relative deadline `D`.
    #[inline]
    #[must_use]
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Minimum inter-arrival time (period) `T`.
    #[inline]
    #[must_use]
    pub fn period(&self) -> Time {
        self.period
    }

    /// Initial release time (phase) `φ`.
    #[inline]
    #[must_use]
    pub fn phase(&self) -> Time {
        self.phase
    }

    /// Optional human-readable task name.
    #[inline]
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The specific utilization `U(τ) = C/T` as a floating point number.
    ///
    /// # Examples
    ///
    /// ```
    /// use edf_model::{Task, Time};
    /// # fn main() -> Result<(), edf_model::TaskError> {
    /// let tau = Task::new(Time::new(1), Time::new(3), Time::new(4))?;
    /// assert!((tau.utilization() - 0.25).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.wcet.as_f64() / self.period.as_f64()
    }

    /// The density `C / min(D, T)` as a floating point number.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.wcet.as_f64() / self.deadline.min(self.period).as_f64()
    }

    /// The deadline *gap* `(T − min(D, T)) / T ∈ [0, 1]`: the relative amount
    /// by which the deadline is shorter than the period (0 for implicit or
    /// arbitrary deadlines with `D ≥ T`).
    ///
    /// This is the quantity the paper's experiments sweep ("average gap of
    /// 20%, 30% and 40%").
    #[must_use]
    pub fn deadline_gap(&self) -> f64 {
        let effective = self.deadline.min(self.period);
        (self.period - effective).as_f64() / self.period.as_f64()
    }

    /// `true` if `D < T` (constrained deadline).
    #[must_use]
    pub fn is_constrained_deadline(&self) -> bool {
        self.deadline < self.period
    }

    /// `true` if `D == T` (implicit deadline).
    #[must_use]
    pub fn is_implicit_deadline(&self) -> bool {
        self.deadline == self.period
    }

    /// Absolute deadline of the `k`-th job (0-based) under synchronous
    /// release: `k·T + D`.
    ///
    /// Returns `None` on overflow.
    ///
    /// # Examples
    ///
    /// ```
    /// use edf_model::{Task, Time};
    /// # fn main() -> Result<(), edf_model::TaskError> {
    /// let tau = Task::new(Time::new(1), Time::new(4), Time::new(10))?;
    /// assert_eq!(tau.job_deadline(0), Some(Time::new(4)));
    /// assert_eq!(tau.job_deadline(2), Some(Time::new(24)));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn job_deadline(&self, k: u64) -> Option<Time> {
        self.period.checked_mul(k)?.checked_add(self.deadline)
    }

    /// Release time of the `k`-th job (0-based) under synchronous release:
    /// `k·T`. Returns `None` on overflow.
    #[must_use]
    pub fn job_release(&self, k: u64) -> Option<Time> {
        self.period.checked_mul(k)
    }

    /// Returns a copy of this task with a new name.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Returns a copy of this task with the given phase (initial release
    /// offset).
    #[must_use]
    pub fn with_phase(mut self, phase: Time) -> Self {
        self.phase = phase;
        self
    }

    /// Returns a copy with the worst-case execution time scaled by
    /// `numer/denom` (rounded up, minimum 1). Useful for sensitivity
    /// analysis ("how much can this task grow before the set becomes
    /// infeasible?").
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero.
    #[must_use]
    pub fn with_scaled_wcet(&self, numer: u64, denom: u64) -> Self {
        assert!(denom > 0, "scaling denominator must be positive");
        let scaled = (self.wcet.as_u128() * u128::from(numer)).div_ceil(u128::from(denom));
        let scaled = Time::new(scaled.min(u128::from(u64::MAX)) as u64).max(Time::ONE);
        Task {
            wcet: scaled.min(self.period),
            ..self.clone()
        }
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(name) => write!(
                f,
                "{name}(C={}, D={}, T={})",
                self.wcet, self.deadline, self.period
            ),
            None => write!(
                f,
                "task(C={}, D={}, T={})",
                self.wcet, self.deadline, self.period
            ),
        }
    }
}

/// Builder for [`Task`] values with optional phase and name.
///
/// # Examples
///
/// ```
/// use edf_model::{TaskBuilder, Time};
///
/// # fn main() -> Result<(), edf_model::TaskError> {
/// let tau = TaskBuilder::new(Time::new(2), Time::new(9), Time::new(10))
///     .name("sensor_fusion")
///     .phase(Time::new(3))
///     .build()?;
/// assert_eq!(tau.name(), Some("sensor_fusion"));
/// assert_eq!(tau.phase(), Time::new(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    wcet: Time,
    deadline: Time,
    period: Time,
    phase: Time,
    name: Option<String>,
}

impl TaskBuilder {
    /// Starts a builder with the three mandatory parameters.
    #[must_use]
    pub fn new(wcet: Time, deadline: Time, period: Time) -> Self {
        TaskBuilder {
            wcet,
            deadline,
            period,
            phase: Time::ZERO,
            name: None,
        }
    }

    /// Sets the initial release offset (phase).
    #[must_use]
    pub fn phase(mut self, phase: Time) -> Self {
        self.phase = phase;
        self
    }

    /// Sets a human-readable name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Validates the parameters and builds the task.
    ///
    /// # Errors
    ///
    /// Returns a [`TaskError`] if a parameter is zero or `wcet > period`.
    pub fn build(self) -> Result<Task, TaskError> {
        if self.wcet.is_zero() {
            return Err(TaskError::ZeroWcet);
        }
        if self.deadline.is_zero() {
            return Err(TaskError::ZeroDeadline);
        }
        if self.period.is_zero() {
            return Err(TaskError::ZeroPeriod);
        }
        if self.wcet > self.period {
            return Err(TaskError::WcetExceedsPeriod {
                wcet: self.wcet,
                period: self.period,
            });
        }
        Ok(Task {
            wcet: self.wcet,
            deadline: self.deadline,
            period: self.period,
            phase: self.phase,
            name: self.name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    #[test]
    fn construction_happy_path() {
        let tau = t(2, 8, 10);
        assert_eq!(tau.wcet(), Time::new(2));
        assert_eq!(tau.deadline(), Time::new(8));
        assert_eq!(tau.period(), Time::new(10));
        assert_eq!(tau.phase(), Time::ZERO);
        assert_eq!(tau.name(), None);
    }

    #[test]
    fn construction_rejects_zero_parameters() {
        assert_eq!(Task::from_ticks(0, 5, 10), Err(TaskError::ZeroWcet));
        assert_eq!(Task::from_ticks(1, 0, 10), Err(TaskError::ZeroDeadline));
        assert_eq!(Task::from_ticks(1, 5, 0), Err(TaskError::ZeroPeriod));
    }

    #[test]
    fn construction_rejects_wcet_above_period() {
        assert_eq!(
            Task::from_ticks(11, 20, 10),
            Err(TaskError::WcetExceedsPeriod {
                wcet: Time::new(11),
                period: Time::new(10)
            })
        );
    }

    #[test]
    fn wcet_above_deadline_is_allowed() {
        // Trivially unschedulable, but a legal model the exact tests must
        // reject analytically rather than at construction.
        let tau = t(5, 3, 10);
        assert!(tau.wcet() > tau.deadline());
    }

    #[test]
    fn error_display_is_informative() {
        let msg = TaskError::WcetExceedsPeriod {
            wcet: Time::new(4),
            period: Time::new(2),
        }
        .to_string();
        assert!(msg.contains('4') && msg.contains('2'));
        assert!(!TaskError::ZeroWcet.to_string().is_empty());
        assert!(!TaskError::ZeroDeadline.to_string().is_empty());
        assert!(!TaskError::ZeroPeriod.to_string().is_empty());
    }

    #[test]
    fn utilization_density_gap() {
        let tau = t(2, 5, 10);
        assert!((tau.utilization() - 0.2).abs() < 1e-12);
        assert!((tau.density() - 0.4).abs() < 1e-12);
        assert!((tau.deadline_gap() - 0.5).abs() < 1e-12);

        let implicit = Task::with_implicit_deadline(Time::new(2), Time::new(10)).unwrap();
        assert!(implicit.is_implicit_deadline());
        assert!(!implicit.is_constrained_deadline());
        assert!((implicit.deadline_gap()).abs() < 1e-12);

        // D > T: gap clamps at 0 (effective deadline is the period).
        let arbitrary = t(2, 20, 10);
        assert!((arbitrary.deadline_gap()).abs() < 1e-12);
    }

    #[test]
    fn job_deadlines_and_releases() {
        let tau = t(1, 4, 10);
        assert_eq!(tau.job_release(0), Some(Time::ZERO));
        assert_eq!(tau.job_release(3), Some(Time::new(30)));
        assert_eq!(tau.job_deadline(0), Some(Time::new(4)));
        assert_eq!(tau.job_deadline(3), Some(Time::new(34)));
        assert_eq!(tau.job_deadline(u64::MAX), None, "overflow is reported");
    }

    #[test]
    fn builder_sets_all_fields() {
        let tau = TaskBuilder::new(Time::new(1), Time::new(2), Time::new(3))
            .name("tau_1")
            .phase(Time::new(7))
            .build()
            .unwrap();
        assert_eq!(tau.name(), Some("tau_1"));
        assert_eq!(tau.phase(), Time::new(7));
        assert!(tau.to_string().contains("tau_1"));
    }

    #[test]
    fn named_and_with_phase_copies() {
        let tau = t(1, 2, 3).named("x").with_phase(Time::new(4));
        assert_eq!(tau.name(), Some("x"));
        assert_eq!(tau.phase(), Time::new(4));
    }

    #[test]
    fn scaled_wcet_rounds_up_and_clamps() {
        let tau = t(3, 10, 10);
        assert_eq!(tau.with_scaled_wcet(1, 2).wcet(), Time::new(2)); // ceil(1.5)
        assert_eq!(tau.with_scaled_wcet(10, 1).wcet(), Time::new(10)); // clamp at T
        assert_eq!(tau.with_scaled_wcet(1, 100).wcet(), Time::new(1)); // minimum 1
    }

    #[test]
    fn display_without_name() {
        assert!(t(1, 2, 3).to_string().contains("C=1"));
    }
}
