//! Reconstructions of the example task sets of Table 1 of the paper.
//!
//! Table 1 of Albers & Slomka (DATE 2005) evaluates the tests on five task
//! sets "coming from real examples": Burns, a modified Ma & Shin set, the
//! Generic Avionics Platform (GAP), and two sets from Gresser's dissertation.
//! The paper itself does not list the task parameters; they come from the
//! cited literature (\[1\] Albers & Slomka 2004, \[11\] Gresser 1993, \[14\]
//! Stankovic et al. 1998), most of which is not freely available.
//!
//! This module therefore ships **documented reconstructions**: task sets of
//! the same size, utilization range and deadline character as the originals
//! (see each constructor's documentation).  The property Table 1
//! demonstrates is *relative* — Devi's sufficient test fails on the tighter
//! sets although they are feasible, and the new exact tests need one to two
//! orders of magnitude fewer test intervals than the processor-demand test —
//! and that relation is preserved by these reconstructions.  Absolute
//! iteration counts differ from the paper and are reported side by side in
//! `EXPERIMENTS.md`.
//!
//! # Examples
//!
//! ```
//! use edf_model::literature;
//!
//! let gap = literature::gap();
//! assert_eq!(gap.len(), 18);
//! assert!(gap.utilization() < 1.0);
//! ```

use crate::task::Task;
use crate::task_set::TaskSet;

fn task(name: &str, c: u64, d: u64, t: u64) -> Task {
    Task::from_ticks(c, d, t)
        .unwrap_or_else(|e| panic!("literature task {name} has invalid parameters: {e}"))
        .named(name)
}

/// The "Burns" task set (14 tasks).
///
/// Reconstruction of an avionics-style application set in the spirit of the
/// examples published by Burns et al. and used in \[1\]: 14 tasks, mostly
/// implicit deadlines with a few mildly constrained ones, total utilization
/// ≈ 0.84.  Devi's sufficient test accepts this set (as in Table 1, where it
/// needs exactly one iteration per task).
#[must_use]
pub fn burns() -> TaskSet {
    TaskSet::from_tasks(vec![
        task("burns_01", 500, 4_700, 5_000),
        task("burns_02", 800, 9_400, 10_000),
        task("burns_03", 2_000, 18_500, 20_000),
        task("burns_04", 2_000, 23_500, 25_000),
        task("burns_05", 2_000, 37_000, 40_000),
        task("burns_06", 5_000, 46_000, 50_000),
        task("burns_07", 3_000, 47_000, 50_000),
        task("burns_08", 3_000, 55_000, 59_000),
        task("burns_09", 4_000, 74_000, 80_000),
        task("burns_10", 4_000, 75_000, 80_000),
        task("burns_11", 5_000, 92_000, 100_000),
        task("burns_12", 10_000, 185_000, 200_000),
        task("burns_13", 10_000, 180_000, 200_000),
        task("burns_14", 20_000, 900_000, 1_000_000),
    ])
}

/// The modified "Ma & Shin" task set (8 tasks).
///
/// Reconstruction of the modified Ma & Shin example from \[1\]: a small set
/// whose deadlines are far shorter than its periods, with a high utilization
/// background load.  The set is feasible under EDF, but Devi's sufficient
/// test rejects it (`FAILED` in Table 1), which is exactly the situation the
/// new tests are designed for.
#[must_use]
pub fn ma_shin() -> TaskSet {
    TaskSet::from_tasks(vec![
        task("ma_shin_1", 1, 2, 10),
        task("ma_shin_2", 2, 4, 10),
        task("ma_shin_3", 2, 7, 10),
        task("ma_shin_4", 3, 10, 20),
        task("ma_shin_5", 3, 15, 30),
        task("ma_shin_6", 3, 25, 50),
        task("ma_shin_7", 5, 60, 100),
        task("ma_shin_8", 7, 95, 100),
    ])
}

/// The Generic Avionics Platform (GAP) task set (18 tasks).
///
/// Reconstruction following the well-known avionics workload of Locke,
/// Vogel & Mesler (1991) as reprinted in \[14\]: periods between 1 ms and 1 s,
/// implicit deadlines, total utilization ≈ 0.87.  Devi's test accepts the
/// set (Table 1: 18 iterations, one per task).
#[must_use]
pub fn gap() -> TaskSet {
    // Times in microseconds.
    TaskSet::from_tasks(vec![
        task("gap_timer", 51, 900, 1_000),
        task("gap_aircraft_flight_data", 1_000, 22_500, 25_000),
        task("gap_steering", 3_000, 22_500, 25_000),
        task("gap_radar_tracking_filter", 2_000, 36_000, 40_000),
        task("gap_rwr_contact_mgmt", 5_000, 45_000, 50_000),
        task("gap_data_bus_poll_device", 1_000, 45_000, 50_000),
        task("gap_weapon_release", 3_000, 53_000, 59_000),
        task("gap_radar_target_update", 5_000, 72_000, 80_000),
        task("gap_nav_update", 8_000, 72_000, 80_000),
        task("gap_display_graphic", 9_000, 72_000, 80_000),
        task("gap_display_hook_update", 2_000, 72_000, 80_000),
        task("gap_tracking_target_update", 5_000, 90_000, 100_000),
        task("gap_nav_steering_cmds", 3_000, 180_000, 200_000),
        task("gap_display_stores_update", 1_000, 180_000, 200_000),
        task("gap_display_keyset", 1_000, 180_000, 200_000),
        task("gap_display_stat_update", 3_000, 180_000, 200_000),
        task("gap_bet_e_status_update", 1_000, 900_000, 1_000_000),
        task("gap_nav_status", 100_000, 900_000, 1_000_000),
    ])
}

/// The first Gresser example (7 tasks).
///
/// Reconstruction of an event-driven automation example in the style of
/// Gresser's dissertation \[11\]: a mix of fast tasks with tight deadlines and
/// slow tasks with deadlines well below their periods.  The set is feasible
/// under EDF but rejected by Devi's test (`FAILED` in Table 1).
#[must_use]
pub fn gresser_1() -> TaskSet {
    TaskSet::from_tasks(vec![
        task("gresser1_1", 1, 2, 10),
        task("gresser1_2", 2, 3, 10),
        task("gresser1_3", 2, 9, 10),
        task("gresser1_4", 10, 48, 50),
        task("gresser1_5", 15, 95, 100),
        task("gresser1_6", 20, 390, 400),
        task("gresser1_7", 40, 780, 800),
    ])
}

/// The second Gresser example (9 tasks).
///
/// Like [`gresser_1`], but with a wider spread of periods and a burstier
/// short-deadline load; also rejected by Devi's test although feasible.
#[must_use]
pub fn gresser_2() -> TaskSet {
    TaskSet::from_tasks(vec![
        task("gresser2_1", 1, 2, 8),
        task("gresser2_2", 2, 3, 8),
        task("gresser2_3", 2, 14, 16),
        task("gresser2_4", 6, 60, 64),
        task("gresser2_5", 12, 120, 128),
        task("gresser2_6", 25, 250, 256),
        task("gresser2_7", 50, 500, 512),
        task("gresser2_8", 30, 1_000, 1_024),
        task("gresser2_9", 20, 2_000, 2_048),
    ])
}

/// All five literature sets with their Table 1 row labels, in the paper's
/// order.
#[must_use]
pub fn all() -> Vec<(&'static str, TaskSet)> {
    vec![
        ("Burns", burns()),
        ("Ma & Shin", ma_shin()),
        ("GAP", gap()),
        ("Gresser 1", gresser_1()),
        ("Gresser 2", gresser_2()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_table_1_character() {
        assert_eq!(burns().len(), 14);
        assert_eq!(ma_shin().len(), 8);
        assert_eq!(gap().len(), 18);
        assert_eq!(gresser_1().len(), 7);
        assert_eq!(gresser_2().len(), 9);
        // "The amount of tasks are small (7 to 21 tasks)"
        for (_, ts) in all() {
            assert!((7..=21).contains(&ts.len()));
        }
    }

    #[test]
    fn all_sets_are_underloaded() {
        for (name, ts) in all() {
            assert!(
                !ts.utilization_exceeds_one(),
                "{name} must have U <= 1 (got {})",
                ts.utilization()
            );
            assert!(ts.utilization() > 0.5, "{name} should be non-trivial");
        }
    }

    #[test]
    fn deadline_character() {
        // Burns and GAP: mildly constrained deadlines, accepted by Devi.
        assert!(gap().all_constrained_or_implicit());
        assert!(burns().all_constrained_or_implicit());
        // Ma & Shin and the Gresser sets have constrained deadlines.
        assert!(ma_shin().iter().all(|t| t.deadline() < t.period()));
        assert!(gresser_1().iter().all(|t| t.deadline() < t.period()));
        assert!(gresser_2().iter().all(|t| t.deadline() < t.period()));
    }

    #[test]
    fn names_are_set() {
        for (_, ts) in all() {
            for task in &ts {
                assert!(task.name().is_some());
            }
        }
    }

    #[test]
    fn order_matches_paper() {
        let labels: Vec<&str> = all().into_iter().map(|(l, _)| l).collect();
        assert_eq!(
            labels,
            vec!["Burns", "Ma & Shin", "GAP", "Gresser 1", "Gresser 2"]
        );
    }
}
