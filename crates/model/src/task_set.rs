//! Collections of sporadic tasks (`Γ = {τ₁, …, τₙ}`).
//!
//! [`TaskSet`] owns a vector of [`Task`]s and provides the aggregate
//! quantities every feasibility test needs: total utilization, density,
//! hyperperiod, deadline ordering and simple structural statistics.
//!
//! # Examples
//!
//! ```
//! use edf_model::{Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), edf_model::TaskError> {
//! let ts = TaskSet::from_tasks(vec![
//!     Task::new(Time::new(1), Time::new(4), Time::new(8))?,
//!     Task::new(Time::new(2), Time::new(6), Time::new(12))?,
//! ]);
//! assert_eq!(ts.len(), 2);
//! assert!((ts.utilization() - (1.0 / 8.0 + 2.0 / 12.0)).abs() < 1e-12);
//! assert_eq!(ts.hyperperiod(), Some(Time::new(24)));
//! # Ok(())
//! # }
//! ```

use core::fmt;
use core::ops::Index;
use core::slice;

use crate::task::Task;
use crate::time::Time;

/// An owned collection of sporadic tasks.
///
/// The collection deliberately does not enforce any particular ordering; the
/// analyses that require deadline-monotonic order (e.g. Devi's test) sort a
/// copy via [`TaskSet::sorted_by_deadline`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Creates an empty task set.
    #[must_use]
    pub fn new() -> Self {
        TaskSet { tasks: Vec::new() }
    }

    /// Creates a task set from a vector of tasks.
    #[must_use]
    pub fn from_tasks(tasks: Vec<Task>) -> Self {
        TaskSet { tasks }
    }

    /// Number of tasks in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the set contains no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a task to the set.
    pub fn push(&mut self, task: Task) {
        self.tasks.push(task);
    }

    /// Borrowing iterator over the tasks.
    pub fn iter(&self) -> slice::Iter<'_, Task> {
        self.tasks.iter()
    }

    /// The tasks as a slice.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Consumes the set and returns the underlying vector.
    #[must_use]
    pub fn into_tasks(self) -> Vec<Task> {
        self.tasks
    }

    /// Returns the task at `index`, or `None` if out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&Task> {
        self.tasks.get(index)
    }

    /// Total utilization `U = Σ Cᵢ/Tᵢ` as `f64`.
    ///
    /// For an exact comparison against 1 (needed by the feasibility tests)
    /// use [`TaskSet::utilization_exceeds_one`].
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// Total density `Σ Cᵢ/min(Dᵢ, Tᵢ)` as `f64`.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.tasks.iter().map(Task::density).sum()
    }

    /// Exact test whether `U > 1`, performed in integer arithmetic.
    ///
    /// `Σ Cᵢ/Tᵢ > 1` is evaluated by accumulating `Cᵢ·L/Tᵢ` style products in
    /// `u128` pairwise (numerator over a running common denominator, reduced
    /// by the gcd at every step).  If an intermediate product would overflow
    /// `u128` the comparison conservatively falls back to checking the `f64`
    /// utilization against `1 + 1e-9` (never wrongly claims `U ≤ 1` for
    /// massively overloaded sets, and in practice unreachable for realistic
    /// periods).
    ///
    /// # Examples
    ///
    /// ```
    /// use edf_model::{Task, TaskSet, Time};
    /// # fn main() -> Result<(), edf_model::TaskError> {
    /// let ts = TaskSet::from_tasks(vec![
    ///     Task::new(Time::new(1), Time::new(2), Time::new(2))?,
    ///     Task::new(Time::new(1), Time::new(2), Time::new(2))?,
    /// ]);
    /// assert!(!ts.utilization_exceeds_one()); // exactly 1.0
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn utilization_exceeds_one(&self) -> bool {
        // Running sum num/den with den the lcm of the periods seen so far.
        let mut num: u128 = 0;
        let mut den: u128 = 1;
        for task in &self.tasks {
            let c = task.wcet().as_u128();
            let t = task.period().as_u128();
            let g = gcd_u128(den, t);
            let Some(new_den) = den.checked_mul(t / g) else {
                return self.utilization() > 1.0 + 1e-9;
            };
            let Some(scaled_num) = num.checked_mul(new_den / den) else {
                return self.utilization() > 1.0 + 1e-9;
            };
            let Some(term) = c.checked_mul(new_den / t) else {
                return self.utilization() > 1.0 + 1e-9;
            };
            let Some(new_num) = scaled_num.checked_add(term) else {
                return self.utilization() > 1.0 + 1e-9;
            };
            num = new_num;
            den = new_den;
            // Early exit: already above 1.
            if num > den {
                return true;
            }
            // Keep the fraction small.
            let g2 = gcd_u128(num, den);
            if g2 > 1 {
                num /= g2;
                den /= g2;
            }
        }
        num > den
    }

    /// The hyperperiod `lcm(T₁, …, Tₙ)`, or `None` if it overflows `u64`
    /// or the set is empty.
    #[must_use]
    pub fn hyperperiod(&self) -> Option<Time> {
        if self.tasks.is_empty() {
            return None;
        }
        let mut acc = Time::ONE;
        for task in &self.tasks {
            acc = acc.lcm(task.period())?;
        }
        Some(acc)
    }

    /// Largest relative deadline in the set, or `None` for an empty set.
    #[must_use]
    pub fn max_deadline(&self) -> Option<Time> {
        self.tasks.iter().map(Task::deadline).max()
    }

    /// Smallest relative deadline in the set, or `None` for an empty set.
    #[must_use]
    pub fn min_deadline(&self) -> Option<Time> {
        self.tasks.iter().map(Task::deadline).min()
    }

    /// Largest period, or `None` for an empty set.
    #[must_use]
    pub fn max_period(&self) -> Option<Time> {
        self.tasks.iter().map(Task::period).max()
    }

    /// Smallest period, or `None` for an empty set.
    #[must_use]
    pub fn min_period(&self) -> Option<Time> {
        self.tasks.iter().map(Task::period).min()
    }

    /// The ratio `Tmax/Tmin` (the x-axis of Figure 9), or `None` for an
    /// empty set.
    #[must_use]
    pub fn period_ratio(&self) -> Option<f64> {
        let max = self.max_period()?;
        let min = self.min_period()?;
        Some(max.as_f64() / min.as_f64())
    }

    /// Sum of all worst-case execution times.
    #[must_use]
    pub fn total_wcet(&self) -> Time {
        self.tasks
            .iter()
            .fold(Time::ZERO, |acc, t| acc.saturating_add(t.wcet()))
    }

    /// Average deadline gap (see [`Task::deadline_gap`]), or `None` for an
    /// empty set.
    #[must_use]
    pub fn average_deadline_gap(&self) -> Option<f64> {
        if self.tasks.is_empty() {
            return None;
        }
        Some(self.tasks.iter().map(Task::deadline_gap).sum::<f64>() / self.tasks.len() as f64)
    }

    /// `true` if every task has `D == T` (the restricted Liu & Layland
    /// model of §3.1).
    #[must_use]
    pub fn all_implicit_deadlines(&self) -> bool {
        self.tasks.iter().all(Task::is_implicit_deadline)
    }

    /// `true` if every task has `D ≤ T` (constrained-deadline model).
    #[must_use]
    pub fn all_constrained_or_implicit(&self) -> bool {
        self.tasks.iter().all(|t| t.deadline() <= t.period())
    }

    /// A copy of the set sorted by non-decreasing relative deadline
    /// (the ordering Devi's test is defined on).
    #[must_use]
    pub fn sorted_by_deadline(&self) -> TaskSet {
        let mut tasks = self.tasks.clone();
        tasks.sort_by_key(Task::deadline);
        TaskSet { tasks }
    }

    /// A copy of the set sorted by non-decreasing period (rate-monotonic /
    /// deadline-monotonic index order helpers for fixed-priority baselines).
    #[must_use]
    pub fn sorted_by_period(&self) -> TaskSet {
        let mut tasks = self.tasks.clone();
        tasks.sort_by_key(Task::period);
        TaskSet { tasks }
    }

    /// A copy of the set in which every worst-case execution time is
    /// inflated by `2 · switch_time`, the standard way of accounting for
    /// context-switch overhead in demand-based analysis (each job causes at
    /// most two context switches).  This is one of the practical extensions
    /// of Devi's test that the paper notes carry over to the superposition
    /// approach (§3.5).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`TaskError`](crate::TaskError) if an inflated
    /// execution time would exceed the task's period (the overhead alone
    /// overloads that task).
    pub fn with_context_switch_overhead(
        &self,
        switch_time: Time,
    ) -> Result<TaskSet, crate::TaskError> {
        let overhead = switch_time.saturating_mul(2);
        let mut tasks = Vec::with_capacity(self.tasks.len());
        for task in &self.tasks {
            let inflated = task.wcet().saturating_add(overhead);
            let mut builder = crate::TaskBuilder::new(inflated, task.deadline(), task.period())
                .phase(task.phase());
            if let Some(name) = task.name() {
                builder = builder.name(name);
            }
            tasks.push(builder.build()?);
        }
        Ok(TaskSet { tasks })
    }
}

impl fmt::Display for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "task set: {} tasks, U = {:.4}",
            self.tasks.len(),
            self.utilization()
        )?;
        for task in &self.tasks {
            writeln!(f, "  {task}")?;
        }
        Ok(())
    }
}

impl Index<usize> for TaskSet {
    type Output = Task;

    fn index(&self, index: usize) -> &Task {
        &self.tasks[index]
    }
}

impl FromIterator<Task> for TaskSet {
    fn from_iter<I: IntoIterator<Item = Task>>(iter: I) -> Self {
        TaskSet {
            tasks: iter.into_iter().collect(),
        }
    }
}

impl Extend<Task> for TaskSet {
    fn extend<I: IntoIterator<Item = Task>>(&mut self, iter: I) {
        self.tasks.extend(iter);
    }
}

impl IntoIterator for TaskSet {
    type Item = Task;
    type IntoIter = std::vec::IntoIter<Task>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = slice::Iter<'a, Task>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

impl From<Vec<Task>> for TaskSet {
    fn from(tasks: Vec<Task>) -> Self {
        TaskSet { tasks }
    }
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;

    fn t(c: u64, d: u64, p: u64) -> Task {
        Task::from_ticks(c, d, p).expect("valid task")
    }

    fn sample() -> TaskSet {
        TaskSet::from_tasks(vec![t(1, 4, 8), t(2, 6, 12), t(3, 10, 24)])
    }

    #[test]
    fn len_iter_index() {
        let ts = sample();
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
        assert_eq!(ts[1].wcet(), Time::new(2));
        assert_eq!(ts.get(2).unwrap().period(), Time::new(24));
        assert!(ts.get(3).is_none());
        assert_eq!(ts.iter().count(), 3);
        assert_eq!((&ts).into_iter().count(), 3);
        assert_eq!(ts.clone().into_iter().count(), 3);
        assert_eq!(ts.tasks().len(), 3);
        assert_eq!(ts.clone().into_tasks().len(), 3);
    }

    #[test]
    fn push_extend_collect() {
        let mut ts = TaskSet::new();
        assert!(ts.is_empty());
        ts.push(t(1, 2, 4));
        ts.extend(vec![t(1, 3, 6)]);
        assert_eq!(ts.len(), 2);
        let collected: TaskSet = vec![t(1, 2, 4), t(2, 4, 8)].into_iter().collect();
        assert_eq!(collected.len(), 2);
        let from_vec: TaskSet = vec![t(1, 2, 4)].into();
        assert_eq!(from_vec.len(), 1);
    }

    #[test]
    fn aggregate_quantities() {
        let ts = sample();
        let expected_u = 1.0 / 8.0 + 2.0 / 12.0 + 3.0 / 24.0;
        assert!((ts.utilization() - expected_u).abs() < 1e-12);
        let expected_density = 1.0 / 4.0 + 2.0 / 6.0 + 3.0 / 10.0;
        assert!((ts.density() - expected_density).abs() < 1e-12);
        assert_eq!(ts.hyperperiod(), Some(Time::new(24)));
        assert_eq!(ts.max_deadline(), Some(Time::new(10)));
        assert_eq!(ts.min_deadline(), Some(Time::new(4)));
        assert_eq!(ts.max_period(), Some(Time::new(24)));
        assert_eq!(ts.min_period(), Some(Time::new(8)));
        assert!((ts.period_ratio().unwrap() - 3.0).abs() < 1e-12);
        assert_eq!(ts.total_wcet(), Time::new(6));
    }

    #[test]
    fn empty_set_aggregates() {
        let ts = TaskSet::new();
        assert_eq!(ts.hyperperiod(), None);
        assert_eq!(ts.max_deadline(), None);
        assert_eq!(ts.min_period(), None);
        assert_eq!(ts.period_ratio(), None);
        assert_eq!(ts.average_deadline_gap(), None);
        assert_eq!(ts.utilization(), 0.0);
        assert!(!ts.utilization_exceeds_one());
        assert!(ts.all_implicit_deadlines());
    }

    #[test]
    fn exact_utilization_comparison() {
        // Exactly 1: 1/2 + 1/3 + 1/6.
        let ts = TaskSet::from_tasks(vec![t(1, 2, 2), t(1, 3, 3), t(1, 6, 6)]);
        assert!(!ts.utilization_exceeds_one());
        // Slightly above 1: 1/2 + 1/3 + 1/6 + 1/1000.
        let mut over = ts.clone();
        over.push(t(1, 1000, 1000));
        assert!(over.utilization_exceeds_one());
        // Comfortably below.
        let under = TaskSet::from_tasks(vec![t(1, 10, 10), t(1, 10, 10)]);
        assert!(!under.utilization_exceeds_one());
    }

    #[test]
    fn exact_utilization_with_coprime_large_periods() {
        // Primes near 10^4..10^5: exercises the reduction path without
        // overflowing u128.
        let ts = TaskSet::from_tasks(vec![
            t(9973, 99991, 99991),
            t(99990, 99991, 99991),
            t(1, 99991, 99991),
        ]);
        // 9973/99991 + 99990/99991 + 1/99991 = 109964/99991 > 1.
        assert!(ts.utilization_exceeds_one());
    }

    #[test]
    fn deadline_classification() {
        let implicit = TaskSet::from_tasks(vec![t(1, 8, 8), t(2, 12, 12)]);
        assert!(implicit.all_implicit_deadlines());
        assert!(implicit.all_constrained_or_implicit());
        let constrained = sample();
        assert!(!constrained.all_implicit_deadlines());
        assert!(constrained.all_constrained_or_implicit());
        let arbitrary = TaskSet::from_tasks(vec![t(1, 20, 8)]);
        assert!(!arbitrary.all_constrained_or_implicit());
    }

    #[test]
    fn sorting() {
        let ts = TaskSet::from_tasks(vec![t(1, 10, 20), t(1, 4, 30), t(1, 7, 10)]);
        let by_d = ts.sorted_by_deadline();
        let deadlines: Vec<u64> = by_d.iter().map(|t| t.deadline().as_u64()).collect();
        assert_eq!(deadlines, vec![4, 7, 10]);
        let by_p = ts.sorted_by_period();
        let periods: Vec<u64> = by_p.iter().map(|t| t.period().as_u64()).collect();
        assert_eq!(periods, vec![10, 20, 30]);
        // Original untouched.
        assert_eq!(ts[0].deadline(), Time::new(10));
    }

    #[test]
    fn average_gap() {
        let ts = TaskSet::from_tasks(vec![t(1, 5, 10), t(1, 10, 10)]);
        // gaps: 0.5 and 0.0
        assert!((ts.average_deadline_gap().unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn context_switch_overhead_inflates_every_wcet() {
        let ts = TaskSet::from_tasks(vec![t(2, 8, 10), t(3, 15, 20)]);
        let inflated = ts.with_context_switch_overhead(Time::new(1)).unwrap();
        assert_eq!(inflated[0].wcet(), Time::new(4));
        assert_eq!(inflated[1].wcet(), Time::new(5));
        assert_eq!(inflated[0].deadline(), Time::new(8));
        assert!(inflated.utilization() > ts.utilization());
        // Zero overhead is the identity.
        assert_eq!(ts.with_context_switch_overhead(Time::ZERO).unwrap(), ts);
        // Too much overhead is rejected (2·5 pushes task 0 past its period).
        assert!(ts.with_context_switch_overhead(Time::new(5)).is_err());
    }

    #[test]
    fn hyperperiod_overflow_reported() {
        let ts = TaskSet::from_tasks(vec![
            t(1, u64::MAX - 1, u64::MAX - 1),
            t(1, u64::MAX - 2, u64::MAX - 2),
        ]);
        assert_eq!(ts.hyperperiod(), None);
    }

    #[test]
    fn display_lists_tasks() {
        let text = sample().to_string();
        assert!(text.contains("3 tasks"));
        assert!(text.contains("C=1"));
    }
}
