//! Gresser-style event streams (§2 and §3.6 of the paper).
//!
//! The sporadic task model describes strictly periodic worst-case arrival
//! patterns.  Gresser's *event stream* model generalises this to bursty
//! stimuli: an event stream is a set of tuples `(z, a)` where `a` is the
//! earliest time (relative to the start of an interval) at which the tuple's
//! events can occur and `z` is the cycle with which the tuple repeats
//! (`None` encodes a one-shot tuple that contributes at most a single
//! event).  The *event bound function* `η(I)` gives the maximum number of
//! events the stream can produce in any time window of length `I`.
//!
//! The paper notes that its new feasibility tests "can be extended to more
//! advanced task models. Especially the extension for the event stream model
//! is easy".  This module provides that substrate: streams, their event
//! bound function, and [`EventStreamTask`]s whose demand bound function can
//! be fed into a processor-demand style analysis.
//!
//! # Examples
//!
//! A periodic stream with period 10 is the single tuple `(10, 0)`:
//!
//! ```
//! use edf_model::{EventStream, Time};
//!
//! let periodic = EventStream::periodic(Time::new(10));
//! assert_eq!(periodic.eta(Time::new(0)), 1);   // an event right at the window start
//! assert_eq!(periodic.eta(Time::new(9)), 1);
//! assert_eq!(periodic.eta(Time::new(10)), 2);
//! ```
//!
//! A burst of 3 events that repeats every 100 time units, with 5 time units
//! between the events inside the burst:
//!
//! ```
//! use edf_model::{EventStream, Time};
//!
//! let burst = EventStream::bursty(3, Time::new(5), Time::new(100));
//! assert_eq!(burst.eta(Time::new(0)), 1);
//! assert_eq!(burst.eta(Time::new(5)), 2);
//! assert_eq!(burst.eta(Time::new(10)), 3);
//! assert_eq!(burst.eta(Time::new(99)), 3);
//! assert_eq!(burst.eta(Time::new(100)), 4);
//! ```

use core::fmt;

use crate::task::Task;
use crate::time::Time;

/// One tuple `(z, a)` of an event stream.
///
/// `offset` is the earliest position of the tuple's first event relative to
/// the start of the observation window; `cycle` is the distance between
/// repetitions (`None` for a tuple that fires at most once).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EventTuple {
    /// Repetition cycle `z`; `None` for a one-shot tuple.
    pub cycle: Option<Time>,
    /// Offset `a` of the first event inside the window.
    pub offset: Time,
}

impl EventTuple {
    /// A periodically repeating tuple.
    #[must_use]
    pub fn periodic(cycle: Time, offset: Time) -> Self {
        EventTuple {
            cycle: Some(cycle),
            offset,
        }
    }

    /// A tuple contributing at most one event.
    #[must_use]
    pub fn single(offset: Time) -> Self {
        EventTuple {
            cycle: None,
            offset,
        }
    }

    /// Number of events this tuple contributes to a window of length
    /// `interval`.
    #[must_use]
    pub fn events_in(&self, interval: Time) -> u64 {
        if interval < self.offset {
            return 0;
        }
        match self.cycle {
            None => 1,
            Some(z) if z.is_zero() => 1,
            Some(z) => (interval - self.offset).div_floor(z) + 1,
        }
    }
}

/// Errors produced when constructing event streams or event-stream tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventStreamError {
    /// The stream contains no tuples.
    EmptyStream,
    /// A repeating tuple has a zero cycle.
    ZeroCycle,
    /// The per-event execution time is zero.
    ZeroWcet,
    /// The relative deadline is zero.
    ZeroDeadline,
}

impl fmt::Display for EventStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventStreamError::EmptyStream => {
                write!(f, "event stream must contain at least one tuple")
            }
            EventStreamError::ZeroCycle => {
                write!(f, "repeating event tuple must have a positive cycle")
            }
            EventStreamError::ZeroWcet => write!(f, "per-event execution time must be positive"),
            EventStreamError::ZeroDeadline => write!(f, "relative deadline must be positive"),
        }
    }
}

impl std::error::Error for EventStreamError {}

/// A Gresser event stream: a set of [`EventTuple`]s whose superposition
/// gives the worst-case arrival pattern of a stimulus.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EventStream {
    tuples: Vec<EventTuple>,
}

impl EventStream {
    /// Creates an event stream from its tuples.
    ///
    /// # Errors
    ///
    /// Returns [`EventStreamError::EmptyStream`] if `tuples` is empty and
    /// [`EventStreamError::ZeroCycle`] if any repeating tuple has cycle 0.
    pub fn new(tuples: Vec<EventTuple>) -> Result<Self, EventStreamError> {
        if tuples.is_empty() {
            return Err(EventStreamError::EmptyStream);
        }
        if tuples
            .iter()
            .any(|t| matches!(t.cycle, Some(z) if z.is_zero()))
        {
            return Err(EventStreamError::ZeroCycle);
        }
        Ok(EventStream { tuples })
    }

    /// The stream of a strictly periodic stimulus with the given period:
    /// the single tuple `(period, 0)`.
    #[must_use]
    pub fn periodic(period: Time) -> Self {
        EventStream {
            tuples: vec![EventTuple::periodic(period, Time::ZERO)],
        }
    }

    /// The stream of a sporadic burst: `burst_len` events separated by
    /// `inner_distance`, the whole pattern repeating every `outer_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `burst_len` is zero.
    #[must_use]
    pub fn bursty(burst_len: u64, inner_distance: Time, outer_cycle: Time) -> Self {
        assert!(burst_len > 0, "burst length must be positive");
        let tuples = (0..burst_len)
            .map(|k| EventTuple::periodic(outer_cycle, inner_distance * k))
            .collect();
        EventStream { tuples }
    }

    /// The tuples of this stream.
    #[must_use]
    pub fn tuples(&self) -> &[EventTuple] {
        &self.tuples
    }

    /// The event bound function `η(I)`: the maximum number of events in any
    /// window of length `interval`.
    ///
    /// # Examples
    ///
    /// ```
    /// use edf_model::{EventStream, Time};
    /// let s = EventStream::periodic(Time::new(4));
    /// assert_eq!(s.eta(Time::new(11)), 3);
    /// ```
    #[must_use]
    pub fn eta(&self, interval: Time) -> u64 {
        self.tuples.iter().map(|t| t.events_in(interval)).sum()
    }

    /// The long-run event rate (events per time unit) contributed by the
    /// repeating tuples.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.tuples
            .iter()
            .filter_map(|t| t.cycle)
            .map(|z| 1.0 / z.as_f64())
            .sum()
    }

    /// Interval lengths `≤ horizon` at which `η` increases (the candidate
    /// test intervals of a demand-based analysis), sorted and de-duplicated.
    #[must_use]
    pub fn change_points(&self, horizon: Time) -> Vec<Time> {
        let mut points = Vec::new();
        for tuple in &self.tuples {
            let mut at = tuple.offset;
            loop {
                if at > horizon {
                    break;
                }
                points.push(at);
                match tuple.cycle {
                    Some(z) => match at.checked_add(z) {
                        Some(next) => at = next,
                        None => break,
                    },
                    None => break,
                }
            }
        }
        points.sort_unstable();
        points.dedup();
        points
    }
}

impl fmt::Display for EventStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event stream with {} tuple(s)", self.tuples.len())
    }
}

/// A task activated by an [`EventStream`]: every event requires `wcet`
/// execution time and must finish within `deadline` of its occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EventStreamTask {
    stream: EventStream,
    wcet: Time,
    deadline: Time,
    name: Option<String>,
}

impl EventStreamTask {
    /// Creates an event-stream task.
    ///
    /// # Errors
    ///
    /// Returns an [`EventStreamError`] if `wcet` or `deadline` is zero.
    pub fn new(stream: EventStream, wcet: Time, deadline: Time) -> Result<Self, EventStreamError> {
        if wcet.is_zero() {
            return Err(EventStreamError::ZeroWcet);
        }
        if deadline.is_zero() {
            return Err(EventStreamError::ZeroDeadline);
        }
        Ok(EventStreamTask {
            stream,
            wcet,
            deadline,
            name: None,
        })
    }

    /// Gives the task a human-readable name.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// The activating event stream.
    #[must_use]
    pub fn stream(&self) -> &EventStream {
        &self.stream
    }

    /// Execution demand per event.
    #[must_use]
    pub fn wcet(&self) -> Time {
        self.wcet
    }

    /// Relative deadline per event.
    #[must_use]
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Optional name.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Long-run processor utilization of this task.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.stream.rate() * self.wcet.as_f64()
    }

    /// Demand bound function: the maximum execution demand with both event
    /// occurrence and deadline inside a window of length `interval`.
    ///
    /// Events with occurrence time `t ≤ interval − deadline` have their
    /// deadline inside the window, hence
    /// `dbf(I) = C · η(I − D)` for `I ≥ D` and 0 otherwise.
    #[must_use]
    pub fn dbf(&self, interval: Time) -> Time {
        if interval < self.deadline {
            return Time::ZERO;
        }
        let events = self.stream.eta(interval - self.deadline);
        self.wcet.saturating_mul(events)
    }

    /// Converts a purely periodic event-stream task (single periodic tuple
    /// with offset 0) into an equivalent sporadic [`Task`]; returns `None`
    /// for genuinely bursty streams.
    #[must_use]
    pub fn to_sporadic(&self) -> Option<Task> {
        if self.stream.tuples.len() != 1 {
            return None;
        }
        let tuple = self.stream.tuples[0];
        let cycle = tuple.cycle?;
        if !tuple.offset.is_zero() {
            return None;
        }
        Task::new(self.wcet, self.deadline, cycle).ok()
    }
}

impl fmt::Display for EventStreamTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(
                f,
                "{n}(C={}, D={}, {})",
                self.wcet, self.deadline, self.stream
            ),
            None => write!(
                f,
                "es-task(C={}, D={}, {})",
                self.wcet, self.deadline, self.stream
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_eta_matches_closed_form() {
        let s = EventStream::periodic(Time::new(10));
        for i in 0..50u64 {
            assert_eq!(s.eta(Time::new(i)), i / 10 + 1);
        }
    }

    #[test]
    fn single_tuple_contributes_once() {
        let tuple = EventTuple::single(Time::new(5));
        assert_eq!(tuple.events_in(Time::new(4)), 0);
        assert_eq!(tuple.events_in(Time::new(5)), 1);
        assert_eq!(tuple.events_in(Time::new(500)), 1);
    }

    #[test]
    fn bursty_eta() {
        let s = EventStream::bursty(3, Time::new(2), Time::new(50));
        assert_eq!(s.eta(Time::new(0)), 1);
        assert_eq!(s.eta(Time::new(2)), 2);
        assert_eq!(s.eta(Time::new(4)), 3);
        assert_eq!(s.eta(Time::new(49)), 3);
        assert_eq!(s.eta(Time::new(50)), 4);
        assert_eq!(s.eta(Time::new(54)), 6);
    }

    #[test]
    fn construction_errors() {
        assert_eq!(EventStream::new(vec![]), Err(EventStreamError::EmptyStream));
        assert_eq!(
            EventStream::new(vec![EventTuple::periodic(Time::ZERO, Time::ZERO)]),
            Err(EventStreamError::ZeroCycle)
        );
        let s = EventStream::periodic(Time::new(10));
        assert_eq!(
            EventStreamTask::new(s.clone(), Time::ZERO, Time::new(5)),
            Err(EventStreamError::ZeroWcet)
        );
        assert_eq!(
            EventStreamTask::new(s, Time::new(1), Time::ZERO),
            Err(EventStreamError::ZeroDeadline)
        );
        assert!(!EventStreamError::EmptyStream.to_string().is_empty());
    }

    #[test]
    #[should_panic]
    fn bursty_zero_len_panics() {
        let _ = EventStream::bursty(0, Time::new(1), Time::new(10));
    }

    #[test]
    fn rate_and_utilization() {
        let s = EventStream::bursty(2, Time::new(1), Time::new(20));
        assert!((s.rate() - 0.1).abs() < 1e-12);
        let task = EventStreamTask::new(s, Time::new(3), Time::new(5)).unwrap();
        assert!((task.utilization() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn dbf_shifts_by_deadline() {
        let s = EventStream::periodic(Time::new(10));
        let task = EventStreamTask::new(s, Time::new(2), Time::new(4)).unwrap();
        assert_eq!(task.dbf(Time::new(3)), Time::ZERO);
        assert_eq!(task.dbf(Time::new(4)), Time::new(2)); // first event's deadline
        assert_eq!(task.dbf(Time::new(13)), Time::new(2));
        assert_eq!(task.dbf(Time::new(14)), Time::new(4)); // second event
    }

    #[test]
    fn change_points_sorted_unique() {
        let s = EventStream::bursty(2, Time::new(3), Time::new(10));
        let pts = s.change_points(Time::new(25));
        assert_eq!(
            pts,
            vec![
                Time::new(0),
                Time::new(3),
                Time::new(10),
                Time::new(13),
                Time::new(20),
                Time::new(23)
            ]
        );
    }

    #[test]
    fn conversion_to_sporadic() {
        let periodic = EventStreamTask::new(
            EventStream::periodic(Time::new(12)),
            Time::new(2),
            Time::new(9),
        )
        .unwrap();
        let sporadic = periodic.to_sporadic().expect("periodic stream converts");
        assert_eq!(sporadic.period(), Time::new(12));
        assert_eq!(sporadic.deadline(), Time::new(9));

        let bursty = EventStreamTask::new(
            EventStream::bursty(2, Time::new(1), Time::new(12)),
            Time::new(2),
            Time::new(9),
        )
        .unwrap();
        assert!(bursty.to_sporadic().is_none());
    }

    #[test]
    fn naming_and_display() {
        let task = EventStreamTask::new(
            EventStream::periodic(Time::new(10)),
            Time::new(1),
            Time::new(5),
        )
        .unwrap()
        .named("can_rx");
        assert_eq!(task.name(), Some("can_rx"));
        assert!(task.to_string().contains("can_rx"));
        assert!(EventStream::periodic(Time::new(3))
            .to_string()
            .contains("1 tuple"));
    }
}
