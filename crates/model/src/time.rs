//! Discrete time values used throughout the analysis.
//!
//! All quantities of the sporadic task model (worst-case execution times,
//! relative deadlines, minimum inter-arrival times, test intervals) are
//! expressed as non-negative integers of an arbitrary but fixed resolution
//! (e.g. microseconds or processor cycles).  Using integers keeps the demand
//! bound function and all feasibility comparisons exact.
//!
//! [`Time`] is a thin newtype over `u64` providing checked and saturating
//! arithmetic, ordering, and the number-theoretic helpers (`gcd`, `lcm`)
//! needed for hyperperiod computations.
//!
//! # Examples
//!
//! ```
//! use edf_model::Time;
//!
//! let period = Time::new(20);
//! let deadline = Time::new(15);
//! assert!(deadline < period);
//! assert_eq!((period - deadline).as_u64(), 5);
//! assert_eq!(Time::new(12).lcm(Time::new(18)), Some(Time::new(36)));
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A non-negative, discrete instant or duration.
///
/// `Time` wraps a `u64` tick count.  The unit is chosen by the caller and is
/// never interpreted by this library; only ratios and comparisons matter for
/// feasibility analysis.
///
/// Arithmetic through the standard operators panics on overflow/underflow in
/// debug builds and wraps in release builds (the same contract as the
/// underlying integer type); use [`Time::checked_add`], [`Time::checked_sub`],
/// [`Time::checked_mul`] or the saturating variants when the operands are not
/// known to be in range.
///
/// # Examples
///
/// ```
/// use edf_model::Time;
///
/// let t = Time::new(10) + Time::new(5);
/// assert_eq!(t, Time::new(15));
/// assert_eq!(t.saturating_sub(Time::new(100)), Time::ZERO);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct Time(u64);

impl Time {
    /// The zero instant / empty duration.
    pub const ZERO: Time = Time(0);
    /// One tick.
    pub const ONE: Time = Time(1);
    /// The largest representable time value.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time value from a raw tick count.
    ///
    /// # Examples
    ///
    /// ```
    /// use edf_model::Time;
    /// assert_eq!(Time::new(42).as_u64(), 42);
    /// ```
    #[inline]
    #[must_use]
    pub const fn new(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the tick count widened to `u128` (useful for overflow-free
    /// intermediate products).
    #[inline]
    #[must_use]
    pub const fn as_u128(self) -> u128 {
        self.0 as u128
    }

    /// Returns the tick count as `f64` (lossy for values above 2⁵³).
    #[inline]
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Returns `true` if this is the zero value.
    #[inline]
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    #[must_use]
    pub const fn checked_add(self, rhs: Time) -> Option<Time> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Checked subtraction; `None` if `rhs > self`.
    #[inline]
    #[must_use]
    pub const fn checked_sub(self, rhs: Time) -> Option<Time> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Checked multiplication by a scalar; `None` on overflow.
    #[inline]
    #[must_use]
    pub const fn checked_mul(self, factor: u64) -> Option<Time> {
        match self.0.checked_mul(factor) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Saturating addition.
    #[inline]
    #[must_use]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    #[must_use]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication by a scalar.
    #[inline]
    #[must_use]
    pub const fn saturating_mul(self, factor: u64) -> Time {
        Time(self.0.saturating_mul(factor))
    }

    /// Integer division rounding towards zero.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[inline]
    #[must_use]
    pub const fn div_floor(self, divisor: Time) -> u64 {
        self.0 / divisor.0
    }

    /// Integer division rounding up.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[inline]
    #[must_use]
    pub const fn div_ceil(self, divisor: Time) -> u64 {
        self.0.div_ceil(divisor.0)
    }

    /// Greatest common divisor with `other` (Euclid's algorithm).
    ///
    /// `gcd(0, x) == x` by convention.
    ///
    /// # Examples
    ///
    /// ```
    /// use edf_model::Time;
    /// assert_eq!(Time::new(12).gcd(Time::new(18)), Time::new(6));
    /// assert_eq!(Time::new(0).gcd(Time::new(7)), Time::new(7));
    /// ```
    #[must_use]
    pub const fn gcd(self, other: Time) -> Time {
        let (mut a, mut b) = (self.0, other.0);
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        Time(a)
    }

    /// Least common multiple with `other`, or `None` if it overflows `u64`.
    ///
    /// `lcm(0, x) == 0` by convention.
    ///
    /// # Examples
    ///
    /// ```
    /// use edf_model::Time;
    /// assert_eq!(Time::new(4).lcm(Time::new(6)), Some(Time::new(12)));
    /// assert_eq!(Time::new(u64::MAX).lcm(Time::new(u64::MAX - 1)), None);
    /// ```
    #[must_use]
    pub const fn lcm(self, other: Time) -> Option<Time> {
        if self.0 == 0 || other.0 == 0 {
            return Some(Time::ZERO);
        }
        let g = self.gcd(other).0;
        // (a / g) * b cannot lose precision because g divides a.
        match (self.0 / g).checked_mul(other.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Returns the smaller of two time values.
    #[inline]
    #[must_use]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two time values.
    #[inline]
    #[must_use]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<u64> for Time {
    fn from(ticks: u64) -> Self {
        Time(ticks)
    }
}

impl From<u32> for Time {
    fn from(ticks: u32) -> Self {
        Time(u64::from(ticks))
    }
}

impl From<Time> for u64 {
    fn from(t: Time) -> Self {
        t.0
    }
}

impl From<Time> for u128 {
    fn from(t: Time) -> Self {
        u128::from(t.0)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for u64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<Time> for Time {
    type Output = u64;
    #[inline]
    fn div(self, rhs: Time) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Time> for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Self {
        iter.fold(Time::ZERO, |acc, t| acc + t)
    }
}

impl<'a> Sum<&'a Time> for Time {
    fn sum<I: Iterator<Item = &'a Time>>(iter: I) -> Self {
        iter.fold(Time::ZERO, |acc, t| acc + *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Time::new(5).as_u64(), 5);
        assert_eq!(Time::from(7u32).as_u64(), 7);
        assert_eq!(u64::from(Time::new(9)), 9);
        assert_eq!(Time::ZERO.as_u64(), 0);
        assert!(Time::ZERO.is_zero());
        assert!(!Time::ONE.is_zero());
        assert_eq!(Time::default(), Time::ZERO);
    }

    #[test]
    fn display_matches_inner() {
        assert_eq!(Time::new(123).to_string(), "123");
        assert_eq!(format!("{:>5}", Time::new(42)), "   42");
    }

    #[test]
    fn basic_arithmetic() {
        assert_eq!(Time::new(3) + Time::new(4), Time::new(7));
        assert_eq!(Time::new(9) - Time::new(4), Time::new(5));
        assert_eq!(Time::new(3) * 4, Time::new(12));
        assert_eq!(4 * Time::new(3), Time::new(12));
        assert_eq!(Time::new(17) / Time::new(5), 3);
        assert_eq!(Time::new(17) % Time::new(5), Time::new(2));
        let mut t = Time::new(1);
        t += Time::new(2);
        assert_eq!(t, Time::new(3));
        t -= Time::new(1);
        assert_eq!(t, Time::new(2));
    }

    #[test]
    fn checked_arithmetic() {
        assert_eq!(Time::MAX.checked_add(Time::ONE), None);
        assert_eq!(Time::new(1).checked_add(Time::new(2)), Some(Time::new(3)));
        assert_eq!(Time::new(1).checked_sub(Time::new(2)), None);
        assert_eq!(Time::new(5).checked_sub(Time::new(2)), Some(Time::new(3)));
        assert_eq!(Time::MAX.checked_mul(2), None);
        assert_eq!(Time::new(5).checked_mul(3), Some(Time::new(15)));
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(Time::MAX.saturating_add(Time::ONE), Time::MAX);
        assert_eq!(Time::new(1).saturating_sub(Time::new(5)), Time::ZERO);
        assert_eq!(Time::MAX.saturating_mul(3), Time::MAX);
        assert_eq!(Time::new(2).saturating_mul(3), Time::new(6));
    }

    #[test]
    fn division_helpers() {
        assert_eq!(Time::new(10).div_floor(Time::new(3)), 3);
        assert_eq!(Time::new(10).div_ceil(Time::new(3)), 4);
        assert_eq!(Time::new(9).div_ceil(Time::new(3)), 3);
        assert_eq!(Time::new(0).div_ceil(Time::new(3)), 0);
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(Time::new(12).gcd(Time::new(18)), Time::new(6));
        assert_eq!(Time::new(17).gcd(Time::new(5)), Time::new(1));
        assert_eq!(Time::new(0).gcd(Time::new(5)), Time::new(5));
        assert_eq!(Time::new(5).gcd(Time::new(0)), Time::new(5));
        assert_eq!(Time::new(4).lcm(Time::new(6)), Some(Time::new(12)));
        assert_eq!(Time::new(0).lcm(Time::new(6)), Some(Time::ZERO));
        assert_eq!(
            Time::new(u64::MAX).lcm(Time::new(u64::MAX - 1)),
            None,
            "lcm of two huge coprime-ish values overflows"
        );
    }

    #[test]
    fn min_max_sum() {
        assert_eq!(Time::new(3).min(Time::new(5)), Time::new(3));
        assert_eq!(Time::new(3).max(Time::new(5)), Time::new(5));
        let v = [Time::new(1), Time::new(2), Time::new(3)];
        let total: Time = v.iter().sum();
        assert_eq!(total, Time::new(6));
        let total2: Time = v.into_iter().sum();
        assert_eq!(total2, Time::new(6));
    }

    #[test]
    fn ordering() {
        assert!(Time::new(1) < Time::new(2));
        assert!(Time::new(2) <= Time::new(2));
        assert_eq!(Time::new(2).cmp(&Time::new(2)), core::cmp::Ordering::Equal);
    }

    #[test]
    #[should_panic]
    fn sub_underflow_panics_in_debug() {
        let _ = Time::new(1) - Time::new(2);
    }
}
