//! # `edf-model` — sporadic task and event stream models
//!
//! Data model underlying the EDF feasibility analyses of the
//! `edf-feasibility` workspace, reproducing the analysis model of
//!
//! > K. Albers, F. Slomka. *Efficient Feasibility Analysis for Real-Time
//! > Systems with EDF Scheduling.* DATE 2005.
//!
//! The crate provides:
//!
//! * [`Time`] — discrete, exact time values;
//! * [`Task`] / [`TaskSet`] — the sporadic task model `(C, D, T, φ)` of §2
//!   of the paper, with validation, builders and aggregate quantities
//!   (utilization, density, hyperperiod, deadline gap);
//! * [`EventStream`] / [`EventStreamTask`] — Gresser's event stream model,
//!   the "advanced task model" extension the paper refers to;
//! * [`ArrivalCurve`] / [`ArrivalCurveTask`] — staircase upper arrival
//!   curves per real-time calculus, with exact piecewise-linear
//!   construction and exact event-stream round trips;
//! * [`Transaction`] / [`TransactionSystem`] — offset-based transactions:
//!   tasks sharing a period with fixed intra-transaction offsets;
//! * [`literature`] — reconstructions of the Table 1 example task sets
//!   (Burns, Ma & Shin, GAP, Gresser 1/2).
//!
//! # Examples
//!
//! ```
//! use edf_model::{Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), edf_model::TaskError> {
//! let set = TaskSet::from_tasks(vec![
//!     Task::new(Time::new(2), Time::new(7), Time::new(10))?.named("control"),
//!     Task::new(Time::new(3), Time::new(14), Time::new(20))?.named("logging"),
//! ]);
//! assert!(set.utilization() < 1.0);
//! assert_eq!(set.hyperperiod(), Some(Time::new(20)));
//! # Ok(())
//! # }
//! ```
//!
//! Enable the `serde` feature to (de)serialize all model types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrival_curve;
mod event_stream;
pub mod literature;
mod task;
mod task_set;
mod time;
mod transaction;

pub use arrival_curve::{
    AffineSegment, ArrivalCurve, ArrivalCurveError, ArrivalCurveTask, CurveDecomposition,
    MAX_PREFIX_STEPS,
};
pub use event_stream::{EventStream, EventStreamError, EventStreamTask, EventTuple};
pub use task::{Task, TaskBuilder, TaskError};
pub use task_set::TaskSet;
pub use time::Time;
pub use transaction::{Transaction, TransactionError, TransactionPart, TransactionSystem};
