//! # `edf-gen` — random task-set generation for schedulability experiments
//!
//! Reproduces the workload generation of §5 of Albers & Slomka (DATE 2005):
//! task utilizations drawn with UUniFast (the unbiased simplex sampling of
//! Bini & Buttazzo, the paper's ref. \[4\]), configurable period
//! distributions (including the `Tmax/Tmin` ratio control of Figure 9) and
//! a controllable average deadline gap.  The workload model zoo is covered
//! by [`ArrivalCurveConfig`] (random piecewise-linear arrival-curve tasks)
//! and [`TransactionConfig`] (random offset transactions).
//!
//! All generation is seeded and fully reproducible.
//!
//! # Examples
//!
//! ```
//! use edf_gen::{PeriodDistribution, TaskSetConfig};
//!
//! let config = TaskSetConfig::new()
//!     .task_count(5..=100)
//!     .utilization(0.90..=0.99)
//!     .periods(PeriodDistribution::Uniform { min: 1_000, max: 1_000_000 })
//!     .average_gap(0.3)
//!     .seed(2005);
//! let ts = config.generate();
//! assert!(ts.len() >= 5);
//! assert!(ts.utilization() > 0.85);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod curves;
mod periods;
mod sweep;
mod transactions;
mod uunifast;

pub use config::TaskSetConfig;
pub use curves::ArrivalCurveConfig;
pub use periods::PeriodDistribution;
pub use sweep::{period_ratio_sweep, utilization_sweep, SweepPoint};
pub use transactions::TransactionConfig;
pub use uunifast::uunifast;
