//! The UUniFast utilization generator (Bini & Buttazzo).
//!
//! The experiments of the paper generate random task sets "following the
//! uniform distribution proposed by Bini" (ref. \[4\]): task utilizations
//! must be drawn uniformly from the simplex `Σ Uᵢ = U` to avoid the biasing
//! effects of naive generation.  UUniFast is the standard algorithm that
//! achieves exactly that in `O(n)`.

use rand::Rng;

/// Draws `n` task utilizations summing to `total_utilization`, uniformly
/// distributed over the simplex (UUniFast).
///
/// # Panics
///
/// Panics if `n` is zero or `total_utilization` is not strictly positive
/// and finite.
///
/// # Examples
///
/// ```
/// use edf_gen::uunifast;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let utils = uunifast(5, 0.9, &mut rng);
/// assert_eq!(utils.len(), 5);
/// let sum: f64 = utils.iter().sum();
/// assert!((sum - 0.9).abs() < 1e-9);
/// ```
#[must_use]
pub fn uunifast<R: Rng + ?Sized>(n: usize, total_utilization: f64, rng: &mut R) -> Vec<f64> {
    assert!(n > 0, "cannot distribute utilization over zero tasks");
    assert!(
        total_utilization > 0.0 && total_utilization.is_finite(),
        "total utilization must be positive and finite"
    );
    let mut utilizations = Vec::with_capacity(n);
    let mut remaining = total_utilization;
    for i in 1..n {
        let exponent = 1.0 / (n - i) as f64;
        let next: f64 = remaining * rng.gen::<f64>().powf(exponent);
        utilizations.push(remaining - next);
        remaining = next;
    }
    utilizations.push(remaining);
    utilizations
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sums_to_target_and_stays_positive() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(n, u) in &[
            (1usize, 0.5f64),
            (2, 0.9),
            (10, 0.99),
            (100, 0.95),
            (50, 0.7),
        ] {
            let utils = uunifast(n, u, &mut rng);
            assert_eq!(utils.len(), n);
            let sum: f64 = utils.iter().sum();
            assert!((sum - u).abs() < 1e-9, "sum {sum} != {u}");
            assert!(utils.iter().all(|&x| x >= 0.0 && x <= u + 1e-12));
        }
    }

    #[test]
    fn single_task_gets_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(uunifast(1, 0.75, &mut rng), vec![0.75]);
    }

    #[test]
    fn is_deterministic_for_a_fixed_seed() {
        let a = uunifast(8, 0.9, &mut StdRng::seed_from_u64(123));
        let b = uunifast(8, 0.9, &mut StdRng::seed_from_u64(123));
        assert_eq!(a, b);
        let c = uunifast(8, 0.9, &mut StdRng::seed_from_u64(124));
        assert_ne!(a, c);
    }

    #[test]
    fn spreads_load_reasonably() {
        // Statistical sanity: with many draws, the mean share of the first
        // task approaches U/n.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 4;
        let u = 0.8;
        let samples = 2_000;
        let mean_first: f64 = (0..samples)
            .map(|_| uunifast(n, u, &mut rng)[0])
            .sum::<f64>()
            / samples as f64;
        assert!(
            (mean_first - u / n as f64).abs() < 0.02,
            "mean {mean_first}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_tasks_panics() {
        let _ = uunifast(0, 0.5, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic]
    fn non_positive_utilization_panics() {
        let _ = uunifast(3, 0.0, &mut StdRng::seed_from_u64(0));
    }
}
