//! Random offset-transaction generation.

use edf_model::{TaskSet, Time, Transaction, TransactionPart, TransactionSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for random [`Transaction`] generation: each transaction
/// draws a period, a part count, distinct-ish offsets below the period,
/// and per-part execution times and deadlines.
///
/// Beyond the basic ranges, three knobs dial the *candidate product* of
/// the generated system — the quantity the `candidates` engine's cost is
/// exponential in — from 10² to 10⁶ and beyond:
/// [`TransactionConfig::product_shape`] fixes the per-transaction part
/// counts exactly (product = the shape's product),
/// [`TransactionConfig::target_utilization`] sizes the execution times to
/// hit a total long-run utilization, and
/// [`TransactionConfig::offset_choices`] limits the distinct release
/// offsets per transaction (duplicate offsets produce dominated
/// candidates, exercising the engine's pruning).
///
/// # Examples
///
/// ```
/// use edf_gen::TransactionConfig;
///
/// let transactions = TransactionConfig::new()
///     .transaction_count(3..=3)
///     .seed(5)
///     .generate();
/// assert_eq!(transactions.len(), 3);
/// assert!(transactions.iter().all(|t| t.utilization() <= 1.0));
///
/// // A 4^5 = 1024-combination system at ~60 % load.
/// let system = TransactionConfig::new()
///     .product_shape(vec![4; 5])
///     .target_utilization(0.6)
///     .seed(7)
///     .generate_system(edf_model::TaskSet::new());
/// assert_eq!(system.candidate_count(), 1024);
/// assert!((system.utilization() - 0.6).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransactionConfig {
    transaction_count: (usize, usize),
    part_count: (usize, usize),
    period: (u64, u64),
    wcet: (u64, u64),
    /// Exact per-transaction part counts, overriding the two count ranges.
    shape: Option<Vec<usize>>,
    /// Total long-run utilization to size the WCETs for.
    target_utilization: Option<f64>,
    /// Distinct release offsets per transaction (0 = one slice per part).
    offset_choices: usize,
    seed: u64,
}

impl Default for TransactionConfig {
    fn default() -> Self {
        TransactionConfig::new()
    }
}

impl TransactionConfig {
    /// The default configuration: 1–5 transactions with 1–4 parts each,
    /// periods 20–200, part WCETs 1–5, seed 0.
    #[must_use]
    pub fn new() -> Self {
        TransactionConfig {
            transaction_count: (1, 5),
            part_count: (1, 4),
            period: (20, 200),
            wcet: (1, 5),
            shape: None,
            target_utilization: None,
            offset_choices: 0,
            seed: 0,
        }
    }

    /// Sets the (inclusive) range of generated transaction counts.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[must_use]
    pub fn transaction_count(mut self, range: std::ops::RangeInclusive<usize>) -> Self {
        assert!(
            !range.is_empty(),
            "transaction count range must not be empty"
        );
        self.transaction_count = (*range.start(), *range.end());
        self
    }

    /// Sets the (inclusive) range of parts per transaction.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or starts at zero.
    #[must_use]
    pub fn part_count(mut self, range: std::ops::RangeInclusive<usize>) -> Self {
        assert!(
            !range.is_empty() && *range.start() >= 1,
            "part count range must start at 1"
        );
        self.part_count = (*range.start(), *range.end());
        self
    }

    /// Sets the (inclusive) transaction period range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or starts below 2.
    #[must_use]
    pub fn period(mut self, range: std::ops::RangeInclusive<u64>) -> Self {
        assert!(
            !range.is_empty() && *range.start() >= 2,
            "period range must start at 2"
        );
        self.period = (*range.start(), *range.end());
        self
    }

    /// Sets the (inclusive) per-part execution time range (clamped to the
    /// drawn period).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or starts at zero.
    #[must_use]
    pub fn wcet(mut self, range: std::ops::RangeInclusive<u64>) -> Self {
        assert!(
            !range.is_empty() && *range.start() >= 1,
            "wcet range must start at 1"
        );
        self.wcet = (*range.start(), *range.end());
        self
    }

    /// Fixes the generated batch to exactly one transaction per entry of
    /// `shape`, with exactly that many parts each — the candidate product
    /// of the resulting system is the product of the entries, so benches
    /// and property tests can dial product sizes precisely (`vec![4; 5]` →
    /// 1024, `vec![10; 6]` → 10⁶).  Overrides
    /// [`TransactionConfig::transaction_count`] and
    /// [`TransactionConfig::part_count`].
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or any entry is zero.
    #[must_use]
    pub fn product_shape(mut self, shape: Vec<usize>) -> Self {
        assert!(
            !shape.is_empty() && shape.iter().all(|&parts| parts >= 1),
            "product shape entries must be positive"
        );
        self.shape = Some(shape);
        self
    }

    /// Sizes the per-part execution times so the batch's total long-run
    /// utilization lands near `utilization` (each transaction receives an
    /// equal share, split evenly over its parts; integer rounding and the
    /// one-tick minimum make the result approximate, tighter for larger
    /// periods).  Overrides the [`TransactionConfig::wcet`] range.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not positive and finite.
    #[must_use]
    pub fn target_utilization(mut self, utilization: f64) -> Self {
        assert!(
            utilization.is_finite() && utilization > 0.0,
            "target utilization must be positive"
        );
        self.target_utilization = Some(utilization);
        self
    }

    /// Limits each transaction to at most `choices` distinct release
    /// offsets (spread evenly over the period, assigned round-robin to the
    /// parts).  Parts sharing an offset anchor identical critical-instant
    /// candidates, so a transaction with `p` parts contributes at most
    /// `choices` candidates after dominance pruning — the knob for
    /// exercising the candidate engine's pruning layer.  `0` (the default)
    /// restores the one-slice-per-part offsets.
    #[must_use]
    pub fn offset_choices(mut self, choices: usize) -> Self {
        self.offset_choices = choices;
        self
    }

    /// Sets the RNG seed, making generation fully reproducible.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates one batch of transactions using the configured seed.
    #[must_use]
    pub fn generate(&self) -> Vec<Transaction> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.generate_with(&mut rng)
    }

    /// Generates a whole [`TransactionSystem`] around a sporadic
    /// background load.
    #[must_use]
    pub fn generate_system(&self, sporadic: TaskSet) -> TransactionSystem {
        TransactionSystem::new(sporadic, self.generate())
    }

    /// Generates a batch of transactions from a caller-supplied random
    /// source.
    #[must_use]
    pub fn generate_with<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Transaction> {
        let counts: Vec<usize> = match &self.shape {
            Some(shape) => shape.clone(),
            None => {
                let count = rng
                    .gen_range(self.transaction_count.0 as u64..=self.transaction_count.1 as u64);
                (0..count)
                    .map(|_| {
                        rng.gen_range(self.part_count.0 as u64..=self.part_count.1 as u64) as usize
                    })
                    .collect()
            }
        };
        let share = self
            .target_utilization
            .map(|utilization| utilization / counts.len().max(1) as f64);
        counts
            .iter()
            .map(|&parts| self.build_transaction(rng, parts, share))
            .collect()
    }

    fn build_transaction<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        parts: usize,
        utilization_share: Option<f64>,
    ) -> Transaction {
        let period = rng.gen_range(self.period.0..=self.period.1);
        let parts = parts as u64;
        // A transaction-wide per-part cost when a utilization target is
        // set; integer rounding and the one-tick floor keep it approximate.
        let sized_wcet = utilization_share
            .map(|share| ((share * period as f64 / parts as f64).round() as u64).clamp(1, period));
        let offset_of: Vec<u64> = if self.offset_choices > 0 {
            // A limited palette spread evenly over the period, assigned
            // round-robin: parts sharing a palette slot anchor identical
            // candidates (the dominance-pruning regime).
            let choices = (self.offset_choices as u64).min(parts).max(1);
            (0..parts)
                .map(|i| (i % choices) * (period / choices))
                .collect()
        } else {
            // Spread the parts over the period: a random offset in each
            // part's own slice keeps offsets below the period and loosely
            // ordered.
            let slice = period / parts.max(1);
            (0..parts)
                .map(|i| {
                    let base = i * slice;
                    if slice > 1 {
                        base + rng.gen_range(0..slice)
                    } else {
                        base
                    }
                })
                .collect()
        };
        let parts = offset_of
            .into_iter()
            .map(|offset| {
                let wcet = sized_wcet
                    .unwrap_or_else(|| rng.gen_range(self.wcet.0..=self.wcet.1))
                    .min(period);
                let deadline = rng.gen_range(wcet..=period);
                TransactionPart::new(
                    Time::new(offset.min(period - 1)),
                    Time::new(wcet),
                    Time::new(deadline),
                )
            })
            .collect();
        Transaction::new(Time::new(period), parts)
            .expect("generated parameters are valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible_and_valid() {
        let config = TransactionConfig::new()
            .transaction_count(2..=6)
            .part_count(1..=3)
            .period(10..=50)
            .wcet(1..=3)
            .seed(21);
        let a = config.generate();
        assert_eq!(a, config.generate());
        assert!(a.len() >= 2 && a.len() <= 6);
        for transaction in &a {
            assert!(!transaction.is_empty() && transaction.len() <= 3);
            for part in transaction.parts() {
                assert!(part.offset() < transaction.period());
                assert!(part.wcet() >= Time::ONE);
                assert!(part.deadline() >= part.wcet());
                assert!(part.deadline() <= transaction.period());
            }
        }
        assert_ne!(a, config.clone().seed(22).generate());
    }

    #[test]
    fn system_wraps_the_sporadic_background() {
        let system = TransactionConfig::new()
            .transaction_count(2..=2)
            .seed(3)
            .generate_system(TaskSet::new());
        assert_eq!(system.transactions().len(), 2);
        assert!(system.sporadic().is_empty());
        assert!(system.candidate_count() >= 1);
    }

    #[test]
    fn default_configuration_is_usable() {
        assert!(!TransactionConfig::default().generate().is_empty());
    }

    #[test]
    fn product_shape_fixes_the_candidate_product() {
        let system = TransactionConfig::new()
            .product_shape(vec![4, 3, 5, 2])
            .seed(11)
            .generate_system(TaskSet::new());
        assert_eq!(system.transactions().len(), 4);
        let parts: Vec<usize> = system.transactions().iter().map(Transaction::len).collect();
        assert_eq!(parts, vec![4, 3, 5, 2]);
        assert_eq!(system.candidate_count(), 4 * 3 * 5 * 2);
        // A six-digit product is reachable without materializing anything.
        let big = TransactionConfig::new()
            .product_shape(vec![10; 6])
            .seed(12)
            .generate_system(TaskSet::new());
        assert_eq!(big.candidate_count(), 1_000_000);
    }

    #[test]
    fn target_utilization_is_approximately_hit() {
        for target in [0.3, 0.6, 0.9] {
            let system = TransactionConfig::new()
                .product_shape(vec![4; 5])
                .period(200..=2_000)
                .target_utilization(target)
                .seed(13)
                .generate_system(TaskSet::new());
            assert!(
                (system.utilization() - target).abs() < 0.08,
                "target {target}, got {}",
                system.utilization()
            );
        }
    }

    #[test]
    fn offset_choices_limits_distinct_offsets() {
        let transactions = TransactionConfig::new()
            .product_shape(vec![6, 6])
            .offset_choices(2)
            .seed(14)
            .generate();
        for transaction in &transactions {
            let mut offsets: Vec<Time> = transaction.parts().iter().map(|p| p.offset()).collect();
            offsets.sort_unstable();
            offsets.dedup();
            assert!(offsets.len() <= 2, "more than two distinct offsets");
        }
    }
}
