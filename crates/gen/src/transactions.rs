//! Random offset-transaction generation.

use edf_model::{TaskSet, Time, Transaction, TransactionPart, TransactionSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for random [`Transaction`] generation: each transaction
/// draws a period, a part count, distinct-ish offsets below the period,
/// and per-part execution times and deadlines.
///
/// # Examples
///
/// ```
/// use edf_gen::TransactionConfig;
///
/// let transactions = TransactionConfig::new()
///     .transaction_count(3..=3)
///     .seed(5)
///     .generate();
/// assert_eq!(transactions.len(), 3);
/// assert!(transactions.iter().all(|t| t.utilization() <= 1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionConfig {
    transaction_count: (usize, usize),
    part_count: (usize, usize),
    period: (u64, u64),
    wcet: (u64, u64),
    seed: u64,
}

impl Default for TransactionConfig {
    fn default() -> Self {
        TransactionConfig::new()
    }
}

impl TransactionConfig {
    /// The default configuration: 1–5 transactions with 1–4 parts each,
    /// periods 20–200, part WCETs 1–5, seed 0.
    #[must_use]
    pub fn new() -> Self {
        TransactionConfig {
            transaction_count: (1, 5),
            part_count: (1, 4),
            period: (20, 200),
            wcet: (1, 5),
            seed: 0,
        }
    }

    /// Sets the (inclusive) range of generated transaction counts.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[must_use]
    pub fn transaction_count(mut self, range: std::ops::RangeInclusive<usize>) -> Self {
        assert!(
            !range.is_empty(),
            "transaction count range must not be empty"
        );
        self.transaction_count = (*range.start(), *range.end());
        self
    }

    /// Sets the (inclusive) range of parts per transaction.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or starts at zero.
    #[must_use]
    pub fn part_count(mut self, range: std::ops::RangeInclusive<usize>) -> Self {
        assert!(
            !range.is_empty() && *range.start() >= 1,
            "part count range must start at 1"
        );
        self.part_count = (*range.start(), *range.end());
        self
    }

    /// Sets the (inclusive) transaction period range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or starts below 2.
    #[must_use]
    pub fn period(mut self, range: std::ops::RangeInclusive<u64>) -> Self {
        assert!(
            !range.is_empty() && *range.start() >= 2,
            "period range must start at 2"
        );
        self.period = (*range.start(), *range.end());
        self
    }

    /// Sets the (inclusive) per-part execution time range (clamped to the
    /// drawn period).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or starts at zero.
    #[must_use]
    pub fn wcet(mut self, range: std::ops::RangeInclusive<u64>) -> Self {
        assert!(
            !range.is_empty() && *range.start() >= 1,
            "wcet range must start at 1"
        );
        self.wcet = (*range.start(), *range.end());
        self
    }

    /// Sets the RNG seed, making generation fully reproducible.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates one batch of transactions using the configured seed.
    #[must_use]
    pub fn generate(&self) -> Vec<Transaction> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.generate_with(&mut rng)
    }

    /// Generates a whole [`TransactionSystem`] around a sporadic
    /// background load.
    #[must_use]
    pub fn generate_system(&self, sporadic: TaskSet) -> TransactionSystem {
        TransactionSystem::new(sporadic, self.generate())
    }

    /// Generates a batch of transactions from a caller-supplied random
    /// source.
    #[must_use]
    pub fn generate_with<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Transaction> {
        let count =
            rng.gen_range(self.transaction_count.0 as u64..=self.transaction_count.1 as u64);
        (0..count).map(|_| self.build_transaction(rng)).collect()
    }

    fn build_transaction<R: Rng + ?Sized>(&self, rng: &mut R) -> Transaction {
        let period = rng.gen_range(self.period.0..=self.period.1);
        let parts = rng.gen_range(self.part_count.0 as u64..=self.part_count.1 as u64);
        // Spread the parts over the period: a random offset in each part's
        // own slice keeps offsets below the period and loosely ordered.
        let slice = period / parts.max(1);
        let parts = (0..parts)
            .map(|i| {
                let base = i * slice;
                let offset = if slice > 1 {
                    base + rng.gen_range(0..slice)
                } else {
                    base
                };
                let wcet = rng.gen_range(self.wcet.0..=self.wcet.1).min(period);
                let deadline = rng.gen_range(wcet..=period);
                TransactionPart::new(
                    Time::new(offset.min(period - 1)),
                    Time::new(wcet),
                    Time::new(deadline),
                )
            })
            .collect();
        Transaction::new(Time::new(period), parts)
            .expect("generated parameters are valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible_and_valid() {
        let config = TransactionConfig::new()
            .transaction_count(2..=6)
            .part_count(1..=3)
            .period(10..=50)
            .wcet(1..=3)
            .seed(21);
        let a = config.generate();
        assert_eq!(a, config.generate());
        assert!(a.len() >= 2 && a.len() <= 6);
        for transaction in &a {
            assert!(!transaction.is_empty() && transaction.len() <= 3);
            for part in transaction.parts() {
                assert!(part.offset() < transaction.period());
                assert!(part.wcet() >= Time::ONE);
                assert!(part.deadline() >= part.wcet());
                assert!(part.deadline() <= transaction.period());
            }
        }
        assert_ne!(a, config.clone().seed(22).generate());
    }

    #[test]
    fn system_wraps_the_sporadic_background() {
        let system = TransactionConfig::new()
            .transaction_count(2..=2)
            .seed(3)
            .generate_system(TaskSet::new());
        assert_eq!(system.transactions().len(), 2);
        assert!(system.sporadic().is_empty());
        assert!(system.candidate_count() >= 1);
    }

    #[test]
    fn default_configuration_is_usable() {
        assert!(!TransactionConfig::default().generate().is_empty());
    }
}
