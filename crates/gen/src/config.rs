//! Task-set generation configuration.

use edf_model::{Task, TaskBuilder, TaskSet, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::periods::PeriodDistribution;
use crate::uunifast::uunifast;

/// Configuration for random sporadic task-set generation, mirroring the
/// setup of §5 of the paper: UUniFast utilizations, a configurable period
/// distribution, and a controllable *deadline gap* (the relative distance
/// between deadline and period).
///
/// # Examples
///
/// ```
/// use edf_gen::TaskSetConfig;
///
/// let config = TaskSetConfig::new()
///     .task_count(5..=20)
///     .utilization(0.90..=0.99)
///     .average_gap(0.3)
///     .seed(42);
/// let sets = config.generate_many(10);
/// assert_eq!(sets.len(), 10);
/// for ts in &sets {
///     assert!(ts.len() >= 5 && ts.len() <= 20);
///     assert!(ts.utilization() <= 1.0 + 1e-9);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSetConfig {
    task_count: (usize, usize),
    utilization: (f64, f64),
    periods: PeriodDistribution,
    average_gap: f64,
    seed: u64,
}

impl Default for TaskSetConfig {
    fn default() -> Self {
        TaskSetConfig::new()
    }
}

impl TaskSetConfig {
    /// Creates the default configuration: 5–100 tasks (the paper's range),
    /// utilization 0.90–0.99, periods uniform in `[1_000, 1_000_000]`,
    /// average gap 0.3, seed 0.
    #[must_use]
    pub fn new() -> Self {
        TaskSetConfig {
            task_count: (5, 100),
            utilization: (0.90, 0.99),
            periods: PeriodDistribution::default(),
            average_gap: 0.3,
            seed: 0,
        }
    }

    /// Sets the (inclusive) range of task-set sizes.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[must_use]
    pub fn task_count(mut self, range: std::ops::RangeInclusive<usize>) -> Self {
        assert!(!range.is_empty(), "task count range must not be empty");
        self.task_count = (*range.start(), *range.end());
        self
    }

    /// Sets the (inclusive) range of target total utilizations.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not within `(0, 1]` or inverted.
    #[must_use]
    pub fn utilization(mut self, range: std::ops::RangeInclusive<f64>) -> Self {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(
            lo > 0.0 && hi <= 1.0 + 1e-12 && lo <= hi,
            "utilization range must lie in (0, 1]"
        );
        self.utilization = (lo, hi);
        self
    }

    /// Sets a single target utilization.
    #[must_use]
    pub fn fixed_utilization(self, value: f64) -> Self {
        self.utilization(value..=value)
    }

    /// Sets the period distribution.
    #[must_use]
    pub fn periods(mut self, periods: PeriodDistribution) -> Self {
        self.periods = periods;
        self
    }

    /// Sets the average deadline gap `g ∈ [0, 1)`: deadlines are drawn as
    /// `D = C + (T − C)·(1 − γ)` with `γ` uniform in `[0, 2g]` (clamped to
    /// `[0, 1]`), so the *expected* gap between deadline and period is `g`
    /// as in the paper's experiments ("average gap of 20 %, 30 % and 40 %").
    ///
    /// # Panics
    ///
    /// Panics if `gap` is not within `[0, 1)`.
    #[must_use]
    pub fn average_gap(mut self, gap: f64) -> Self {
        assert!((0.0..1.0).contains(&gap), "average gap must be in [0, 1)");
        self.average_gap = gap;
        self
    }

    /// Sets the RNG seed, making generation fully reproducible.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured period distribution.
    #[must_use]
    pub fn period_distribution(&self) -> &PeriodDistribution {
        &self.periods
    }

    /// The configured RNG seed.
    #[must_use]
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// Generates a single task set using the configured seed.
    #[must_use]
    pub fn generate(&self) -> TaskSet {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.generate_with(&mut rng)
    }

    /// Generates `count` task sets using the configured seed (the sets are
    /// different from each other but the whole batch is reproducible).
    #[must_use]
    pub fn generate_many(&self, count: usize) -> Vec<TaskSet> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..count).map(|_| self.generate_with(&mut rng)).collect()
    }

    /// Generates a task set from a caller-supplied random source.
    #[must_use]
    pub fn generate_with<R: Rng + ?Sized>(&self, rng: &mut R) -> TaskSet {
        let n = if self.task_count.0 == self.task_count.1 {
            self.task_count.0
        } else {
            rng.gen_range(self.task_count.0..=self.task_count.1)
        };
        let target_u = if (self.utilization.0 - self.utilization.1).abs() < f64::EPSILON {
            self.utilization.0
        } else {
            rng.gen_range(self.utilization.0..=self.utilization.1)
        };
        let utilizations = uunifast(n, target_u, rng);

        let mut tasks = Vec::with_capacity(n);
        for utilization in utilizations {
            tasks.push(self.build_task(utilization, rng));
        }
        TaskSet::from_tasks(tasks)
    }

    fn build_task<R: Rng + ?Sized>(&self, utilization: f64, rng: &mut R) -> Task {
        let period = self.periods.sample(rng).max(1);
        // Round the execution time, clamping into [1, period].
        let wcet = ((utilization * period as f64).round() as u64).clamp(1, period);
        // Draw the relative gap and place the deadline between C and T.
        let gamma = if self.average_gap == 0.0 {
            0.0
        } else {
            rng.gen_range(0.0..=(2.0 * self.average_gap)).min(1.0)
        };
        let span = (period - wcet) as f64;
        let deadline = wcet + (span * (1.0 - gamma)).round() as u64;
        let deadline = deadline.clamp(wcet, period);
        TaskBuilder::new(Time::new(wcet), Time::new(deadline), Time::new(period))
            .build()
            .expect("generated parameters are valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_sets_respect_the_configuration() {
        let config = TaskSetConfig::new()
            .task_count(5..=30)
            .utilization(0.90..=0.99)
            .average_gap(0.2)
            .seed(7);
        for ts in config.generate_many(50) {
            assert!(ts.len() >= 5 && ts.len() <= 30);
            // Rounding WCETs moves the realized utilization slightly; it
            // must stay close to the requested band.
            assert!(ts.utilization() > 0.5);
            assert!(ts.utilization() < 1.05);
            for task in &ts {
                assert!(task.wcet() >= Time::ONE);
                assert!(task.deadline() >= task.wcet());
                assert!(task.deadline() <= task.period());
            }
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let config = TaskSetConfig::new().seed(99).task_count(10..=10);
        assert_eq!(config.generate(), config.generate());
        assert_eq!(config.generate_many(5), config.generate_many(5));
        let other = TaskSetConfig::new().seed(100).task_count(10..=10);
        assert_ne!(config.generate(), other.generate());
    }

    #[test]
    fn fixed_parameters_are_honoured() {
        let config = TaskSetConfig::new()
            .task_count(12..=12)
            .fixed_utilization(0.75)
            .seed(3);
        let ts = config.generate();
        assert_eq!(ts.len(), 12);
        assert!((ts.utilization() - 0.75).abs() < 0.05);
    }

    #[test]
    fn zero_gap_gives_implicit_deadlines() {
        let config = TaskSetConfig::new()
            .task_count(20..=20)
            .average_gap(0.0)
            .seed(5);
        let ts = config.generate();
        assert!(ts.all_implicit_deadlines());
    }

    #[test]
    fn larger_gap_shrinks_deadlines() {
        let small = TaskSetConfig::new()
            .task_count(40..=40)
            .average_gap(0.1)
            .seed(8);
        let large = TaskSetConfig::new()
            .task_count(40..=40)
            .average_gap(0.45)
            .seed(8);
        let gap_small = small.generate().average_deadline_gap().unwrap();
        let gap_large = large.generate().average_deadline_gap().unwrap();
        assert!(gap_large > gap_small);
        assert!((gap_small - 0.1).abs() < 0.1);
        assert!((gap_large - 0.45).abs() < 0.15);
    }

    #[test]
    fn ratio_controlled_periods_reach_the_requested_spread() {
        let config = TaskSetConfig::new()
            .task_count(60..=60)
            .periods(PeriodDistribution::RatioControlled {
                min: 100,
                ratio: 10_000,
            })
            .seed(2);
        let ts = config.generate();
        let ratio = ts.period_ratio().unwrap();
        assert!(ratio > 100.0, "observed ratio {ratio} too small");
        assert!(ratio <= 10_000.0);
    }

    #[test]
    fn default_configuration_matches_paper() {
        let config = TaskSetConfig::default();
        assert_eq!(config, TaskSetConfig::new());
        assert_eq!(
            config.period_distribution(),
            &PeriodDistribution::Uniform {
                min: 1_000,
                max: 1_000_000
            }
        );
    }

    #[test]
    #[should_panic]
    fn invalid_utilization_range_panics() {
        let _ = TaskSetConfig::new().utilization(0.5..=1.5);
    }

    #[test]
    #[should_panic]
    fn invalid_gap_panics() {
        let _ = TaskSetConfig::new().average_gap(1.0);
    }
}
