//! Period distributions for random task sets.

use rand::Rng;

/// How task periods (minimum inter-arrival times) are drawn.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PeriodDistribution {
    /// Uniformly distributed integer periods in `[min, max]` (the
    /// distribution of the paper's Figure 8 experiment).
    Uniform {
        /// Smallest period (inclusive).
        min: u64,
        /// Largest period (inclusive).
        max: u64,
    },
    /// Log-uniformly distributed periods in `[min, max]`: each order of
    /// magnitude is equally likely, the common choice for automotive-style
    /// workloads.
    LogUniform {
        /// Smallest period (inclusive).
        min: u64,
        /// Largest period (inclusive).
        max: u64,
    },
    /// Periods drawn uniformly from an explicit menu of values (e.g. the
    /// typical {1, 2, 5, 10, 20, 50, 100, 200, 1000} ms automotive set).
    Choice(Vec<u64>),
    /// Periods log-uniformly distributed in `[min, min·ratio]` — the
    /// distribution used to sweep `Tmax/Tmin` in the paper's Figure 9.
    ///
    /// Sampling each order of magnitude equally guarantees that task sets
    /// mix very small and very large periods, which is exactly the regime
    /// in which the processor demand test degenerates (§3.3): the analysis
    /// horizon is driven by the large, slow tasks while the number of test
    /// intervals below it is driven by the small, fast ones.
    RatioControlled {
        /// Smallest period.
        min: u64,
        /// Ratio `Tmax / Tmin`.
        ratio: u64,
    },
}

impl PeriodDistribution {
    /// Draws one period.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is degenerate (empty choice list,
    /// `max < min`, zero minimum or zero ratio).
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            PeriodDistribution::Uniform { min, max } => {
                assert!(*min >= 1 && max >= min, "degenerate uniform period range");
                rng.gen_range(*min..=*max)
            }
            PeriodDistribution::LogUniform { min, max } => {
                assert!(
                    *min >= 1 && max >= min,
                    "degenerate log-uniform period range"
                );
                let lo = (*min as f64).ln();
                let hi = (*max as f64).ln();
                let value = (rng.gen_range(lo..=hi)).exp().round() as u64;
                value.clamp(*min, *max)
            }
            PeriodDistribution::Choice(values) => {
                assert!(!values.is_empty(), "empty period choice list");
                values[rng.gen_range(0..values.len())]
            }
            PeriodDistribution::RatioControlled { min, ratio } => {
                assert!(
                    *min >= 1 && *ratio >= 1,
                    "degenerate ratio-controlled periods"
                );
                let max = min.saturating_mul(*ratio);
                if max == *min {
                    return *min;
                }
                let lo = (*min as f64).ln();
                let hi = (max as f64).ln();
                let value = (rng.gen_range(lo..=hi)).exp().round() as u64;
                value.clamp(*min, max)
            }
        }
    }

    /// The inclusive range `[min, max]` the distribution can produce.
    #[must_use]
    pub fn range(&self) -> (u64, u64) {
        match self {
            PeriodDistribution::Uniform { min, max }
            | PeriodDistribution::LogUniform { min, max } => (*min, *max),
            PeriodDistribution::Choice(values) => (
                values.iter().copied().min().unwrap_or(0),
                values.iter().copied().max().unwrap_or(0),
            ),
            PeriodDistribution::RatioControlled { min, ratio } => {
                (*min, min.saturating_mul(*ratio))
            }
        }
    }
}

impl Default for PeriodDistribution {
    /// The paper's default: periods uniform in `[1_000, 1_000_000]`.
    fn default() -> Self {
        PeriodDistribution::Uniform {
            min: 1_000,
            max: 1_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let distributions = vec![
            PeriodDistribution::Uniform { min: 10, max: 100 },
            PeriodDistribution::LogUniform {
                min: 10,
                max: 100_000,
            },
            PeriodDistribution::Choice(vec![5, 10, 20, 50]),
            PeriodDistribution::RatioControlled {
                min: 100,
                ratio: 1_000,
            },
        ];
        for dist in distributions {
            let (lo, hi) = dist.range();
            for _ in 0..500 {
                let p = dist.sample(&mut rng);
                assert!(p >= lo && p <= hi, "{p} outside [{lo}, {hi}] for {dist:?}");
            }
        }
    }

    #[test]
    fn choice_only_returns_menu_values() {
        let menu = vec![7u64, 13, 21];
        let dist = PeriodDistribution::Choice(menu.clone());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(menu.contains(&dist.sample(&mut rng)));
        }
    }

    #[test]
    fn log_uniform_covers_small_and_large_decades() {
        let dist = PeriodDistribution::LogUniform {
            min: 10,
            max: 1_000_000,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<u64> = (0..3_000).map(|_| dist.sample(&mut rng)).collect();
        let small = samples.iter().filter(|&&p| p < 1_000).count();
        let large = samples.iter().filter(|&&p| p >= 100_000).count();
        // Each spans roughly two of the five decades: both must be common.
        assert!(small > 300, "too few small periods: {small}");
        assert!(large > 300, "too few large periods: {large}");
    }

    #[test]
    fn ratio_controlled_range() {
        let dist = PeriodDistribution::RatioControlled { min: 50, ratio: 4 };
        assert_eq!(dist.range(), (50, 200));
    }

    #[test]
    fn default_matches_paper_setup() {
        assert_eq!(
            PeriodDistribution::default(),
            PeriodDistribution::Uniform {
                min: 1_000,
                max: 1_000_000
            }
        );
    }

    #[test]
    #[should_panic]
    fn empty_choice_panics() {
        let dist = PeriodDistribution::Choice(vec![]);
        let _ = dist.sample(&mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic]
    fn inverted_uniform_range_panics() {
        let dist = PeriodDistribution::Uniform { min: 10, max: 5 };
        let _ = dist.sample(&mut StdRng::seed_from_u64(0));
    }
}
