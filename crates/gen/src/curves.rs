//! Random arrival-curve task generation.

use edf_model::{AffineSegment, ArrivalCurve, ArrivalCurveTask, Time, MAX_PREFIX_STEPS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for random [`ArrivalCurveTask`] generation: each task's
/// curve is the staircase of a small piecewise-linear concave specification
/// (random affine pieces), mirroring how stimuli are specified in
/// real-time-calculus tools.
///
/// # Examples
///
/// ```
/// use edf_gen::ArrivalCurveConfig;
///
/// let tasks = ArrivalCurveConfig::new().task_count(4..=4).seed(7).generate();
/// assert_eq!(tasks.len(), 4);
/// assert!(tasks.iter().all(|t| t.utilization() > 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalCurveConfig {
    task_count: (usize, usize),
    segment_count: (usize, usize),
    burst: (u64, u64),
    distance: (u64, u64),
    wcet: (u64, u64),
    deadline: (u64, u64),
    seed: u64,
}

impl Default for ArrivalCurveConfig {
    fn default() -> Self {
        ArrivalCurveConfig::new()
    }
}

impl ArrivalCurveConfig {
    /// The default configuration: 1–10 tasks, 1–3 affine pieces per curve,
    /// bursts 1–4, distances 20–200, WCETs 1–5, deadlines 5–100, seed 0.
    #[must_use]
    pub fn new() -> Self {
        ArrivalCurveConfig {
            task_count: (1, 10),
            segment_count: (1, 3),
            burst: (1, 4),
            distance: (20, 200),
            wcet: (1, 5),
            deadline: (5, 100),
            seed: 0,
        }
    }

    /// Sets the (inclusive) range of generated task counts.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[must_use]
    pub fn task_count(mut self, range: std::ops::RangeInclusive<usize>) -> Self {
        assert!(!range.is_empty(), "task count range must not be empty");
        self.task_count = (*range.start(), *range.end());
        self
    }

    /// Sets the (inclusive) range of affine pieces per curve.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or starts at zero.
    #[must_use]
    pub fn segment_count(mut self, range: std::ops::RangeInclusive<usize>) -> Self {
        assert!(
            !range.is_empty() && *range.start() >= 1,
            "segment count range must start at 1"
        );
        self.segment_count = (*range.start(), *range.end());
        self
    }

    /// Sets the (inclusive) burst range of the affine pieces.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, starts at zero, or ends above
    /// [`MAX_PREFIX_STEPS`] (a burst that large could not be converted to
    /// a staircase by [`ArrivalCurve::from_affine_segments`]).
    #[must_use]
    pub fn burst(mut self, range: std::ops::RangeInclusive<u64>) -> Self {
        assert!(
            !range.is_empty() && *range.start() >= 1,
            "burst range must start at 1"
        );
        assert!(
            *range.end() <= MAX_PREFIX_STEPS as u64,
            "burst range must stay within MAX_PREFIX_STEPS ({MAX_PREFIX_STEPS})"
        );
        self.burst = (*range.start(), *range.end());
        self
    }

    /// Sets the (inclusive) inter-event distance range of the pieces.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or starts at zero.
    #[must_use]
    pub fn distance(mut self, range: std::ops::RangeInclusive<u64>) -> Self {
        assert!(
            !range.is_empty() && *range.start() >= 1,
            "distance range must start at 1"
        );
        self.distance = (*range.start(), *range.end());
        self
    }

    /// Sets the (inclusive) per-event execution time range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or starts at zero.
    #[must_use]
    pub fn wcet(mut self, range: std::ops::RangeInclusive<u64>) -> Self {
        assert!(
            !range.is_empty() && *range.start() >= 1,
            "wcet range must start at 1"
        );
        self.wcet = (*range.start(), *range.end());
        self
    }

    /// Sets the (inclusive) relative deadline range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or starts at zero.
    #[must_use]
    pub fn deadline(mut self, range: std::ops::RangeInclusive<u64>) -> Self {
        assert!(
            !range.is_empty() && *range.start() >= 1,
            "deadline range must start at 1"
        );
        self.deadline = (*range.start(), *range.end());
        self
    }

    /// Sets the RNG seed, making generation fully reproducible.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates one batch of tasks using the configured seed.
    #[must_use]
    pub fn generate(&self) -> Vec<ArrivalCurveTask> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.generate_with(&mut rng)
    }

    /// Generates a batch of tasks from a caller-supplied random source.
    #[must_use]
    pub fn generate_with<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<ArrivalCurveTask> {
        let count = rng.gen_range(self.task_count.0 as u64..=self.task_count.1 as u64) as usize;
        (0..count).map(|_| self.build_task(rng)).collect()
    }

    fn build_task<R: Rng + ?Sized>(&self, rng: &mut R) -> ArrivalCurveTask {
        let pieces =
            rng.gen_range(self.segment_count.0 as u64..=self.segment_count.1 as u64) as usize;
        let segments: Vec<AffineSegment> = (0..pieces)
            .map(|_| {
                AffineSegment::new(
                    rng.gen_range(self.burst.0..=self.burst.1),
                    Time::new(rng.gen_range(self.distance.0..=self.distance.1)),
                )
            })
            .collect();
        // Near-equal distances can stretch the staircase prefix past
        // MAX_PREFIX_STEPS even for small bursts; fall back to the
        // long-run piece alone, which always converts thanks to the
        // burst() bound.
        let curve = ArrivalCurve::from_affine_segments(&segments).unwrap_or_else(|_| {
            let dominant = segments
                .iter()
                .max_by_key(|s| (s.distance, core::cmp::Reverse(s.burst)))
                .copied()
                .expect("at least one segment is generated");
            ArrivalCurve::from_affine_segments(&[dominant])
                .expect("a single bounded-burst segment always converts")
        });
        ArrivalCurveTask::new(
            curve,
            Time::new(rng.gen_range(self.wcet.0..=self.wcet.1)),
            Time::new(rng.gen_range(self.deadline.0..=self.deadline.1)),
        )
        .expect("generated parameters are positive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible_and_in_range() {
        let config = ArrivalCurveConfig::new()
            .task_count(3..=8)
            .segment_count(1..=2)
            .burst(1..=3)
            .distance(10..=40)
            .wcet(1..=2)
            .deadline(4..=20)
            .seed(11);
        let a = config.generate();
        let b = config.generate();
        assert_eq!(a, b);
        assert!(a.len() >= 3 && a.len() <= 8);
        for task in &a {
            assert!(task.wcet() >= Time::ONE && task.wcet() <= Time::new(2));
            assert!(task.deadline() >= Time::new(4) && task.deadline() <= Time::new(20));
            assert!(!task.curve().steps().is_empty());
        }
        let other = config.clone().seed(12).generate();
        assert_ne!(a, other);
    }

    #[test]
    fn default_configuration_is_usable() {
        let tasks = ArrivalCurveConfig::default().generate();
        assert!(!tasks.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_burst_panics() {
        let _ = ArrivalCurveConfig::new().burst(0..=3);
    }

    #[test]
    #[should_panic]
    fn oversized_burst_panics_at_configuration_time() {
        let _ = ArrivalCurveConfig::new().burst(1..=5_000);
    }
}
