//! Parameter sweeps: batches of task sets across a range of utilizations or
//! period ratios, as used by the paper's experiments.

use edf_model::TaskSet;

use crate::config::TaskSetConfig;
use crate::periods::PeriodDistribution;

/// One point of a sweep: the swept parameter value and the task sets
/// generated for it.
#[derive(Debug, Clone)]
pub struct SweepPoint<P> {
    /// The swept parameter (utilization in percent, period ratio, ...).
    pub parameter: P,
    /// The generated task sets for this parameter value.
    pub task_sets: Vec<TaskSet>,
}

/// Generates the utilization sweep of Figures 1 and 8: for every
/// utilization percentage in `percent_range`, `sets_per_point` task sets
/// drawn from `base` with that (fixed) target utilization.
///
/// The seed of each point is derived from the base seed and the parameter
/// so that points are independent yet reproducible.
///
/// # Examples
///
/// ```
/// use edf_gen::{utilization_sweep, TaskSetConfig};
///
/// let base = TaskSetConfig::new().task_count(5..=15).seed(1);
/// let sweep = utilization_sweep(&base, 90..=92, 5);
/// assert_eq!(sweep.len(), 3);
/// assert_eq!(sweep[0].parameter, 90);
/// assert_eq!(sweep[0].task_sets.len(), 5);
/// ```
#[must_use]
pub fn utilization_sweep(
    base: &TaskSetConfig,
    percent_range: std::ops::RangeInclusive<u32>,
    sets_per_point: usize,
) -> Vec<SweepPoint<u32>> {
    percent_range
        .map(|percent| {
            let utilization = f64::from(percent) / 100.0;
            let config = base
                .clone()
                .fixed_utilization(utilization.min(1.0))
                .seed(derive_seed(base, u64::from(percent)));
            SweepPoint {
                parameter: percent,
                task_sets: config.generate_many(sets_per_point),
            }
        })
        .collect()
}

/// Generates the period-ratio sweep of Figure 9: for every ratio in
/// `ratios`, `sets_per_point` task sets whose periods span `[min_period,
/// min_period·ratio]`.
#[must_use]
pub fn period_ratio_sweep(
    base: &TaskSetConfig,
    min_period: u64,
    ratios: &[u64],
    sets_per_point: usize,
) -> Vec<SweepPoint<u64>> {
    ratios
        .iter()
        .map(|&ratio| {
            let config = base
                .clone()
                .periods(PeriodDistribution::RatioControlled {
                    min: min_period,
                    ratio,
                })
                .seed(derive_seed(base, ratio));
            SweepPoint {
                parameter: ratio,
                task_sets: config.generate_many(sets_per_point),
            }
        })
        .collect()
}

/// Mixes the base seed with the swept parameter (SplitMix64 finalizer) so
/// every sweep point uses an independent, reproducible stream.
fn derive_seed(base: &TaskSetConfig, parameter: u64) -> u64 {
    let mut z = base
        .seed_value()
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(parameter.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_sweep_produces_requested_points() {
        let base = TaskSetConfig::new().task_count(5..=10).seed(3);
        let sweep = utilization_sweep(&base, 90..=99, 3);
        assert_eq!(sweep.len(), 10);
        for (offset, point) in sweep.iter().enumerate() {
            assert_eq!(point.parameter, 90 + offset as u32);
            assert_eq!(point.task_sets.len(), 3);
            for ts in &point.task_sets {
                let target = f64::from(point.parameter) / 100.0;
                assert!((ts.utilization() - target).abs() < 0.05);
            }
        }
    }

    #[test]
    fn ratio_sweep_spans_the_requested_ratios() {
        let base = TaskSetConfig::new().task_count(10..=20).seed(5);
        let ratios = [100, 10_000, 1_000_000];
        let sweep = period_ratio_sweep(&base, 100, &ratios, 2);
        assert_eq!(sweep.len(), 3);
        for (point, &ratio) in sweep.iter().zip(&ratios) {
            assert_eq!(point.parameter, ratio);
            for ts in &point.task_sets {
                let observed = ts.period_ratio().unwrap();
                assert!(observed <= ratio as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn sweeps_are_reproducible() {
        let base = TaskSetConfig::new().task_count(5..=10).seed(3);
        let a = utilization_sweep(&base, 95..=96, 2);
        let b = utilization_sweep(&base, 95..=96, 2);
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.task_sets, pb.task_sets);
        }
    }
}
