//! Deterministic fault injection: a seeded [`FaultPlan`] the service
//! consults at its fault points, plus the report of what was injected.
//!
//! The plan drives four kinds of faults:
//!
//! * **analysis panics** — the per-request analysis closure panics
//!   (inside the service's `catch_unwind` isolation), modelling a bug in
//!   the analysis reached by one pathological request;
//! * **guard fires** — the request watchdog is treated as already
//!   expired, modelling a request whose analysis would have stalled;
//! * **budget exhaustions** — the request's deterministic work budget is
//!   shrunk to zero units, so the analysis unwinds through the
//!   *production* budget checkpoints to an honest `Unknown` (modelling a
//!   request whose allowance runs out mid-loop);
//! * **journal write faults** — one append is torn
//!   ([`WriteFault::ShortWrite`]) or bit-flipped
//!   ([`WriteFault::BitFlip`]), modelling a crash mid-write or media
//!   corruption.
//!
//! Everything is derived from one seed through the same offline
//! `rand::StdRng` the proptest shim uses, so a failing case replays
//! exactly from its seed.  The plan records every injection in a
//! [`FaultReport`] (which request panicked, which append was corrupted),
//! letting the harness compute the exact state a recovery must reproduce:
//! the journal's valid prefix ends at the first faulted append.
//!
//! The injection points live in the service proper (not in test code), so
//! the harness exercises the *production* isolation paths: the same
//! `catch_unwind`, poisoning, rebuild and truncate-at-corruption code
//! runs whether the fault is injected or real.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use crate::journal::WriteFault;

/// Faults chosen for one request (see [`FaultPlan::next_request`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestFaults {
    /// Panic inside the analysis closure.
    pub analysis_panic: bool,
    /// Treat the watchdog guard as already fired (honest `Unknown`).
    pub guard_fire: bool,
    /// Shrink the request's work budget to zero units, exhausting it at
    /// the first production checkpoint (honest `Unknown` with progress).
    pub budget_exhaust: bool,
}

/// One injected fault, with the index of the request (or journal append)
/// it hit — the harness's ground truth for computing expected post-crash
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The `request`-th analyzed request panicked.
    AnalysisPanic {
        /// Zero-based analyzed-request index.
        request: u64,
    },
    /// The `request`-th analyzed request's guard fired.
    GuardFire {
        /// Zero-based analyzed-request index.
        request: u64,
    },
    /// The `request`-th analyzed request's work budget was exhausted.
    BudgetExhaust {
        /// Zero-based analyzed-request index.
        request: u64,
    },
    /// The `append`-th journal append was corrupted.
    Write {
        /// Zero-based journal append index.
        append: u64,
        /// How the frame was corrupted.
        fault: WriteFault,
    },
}

/// Everything a [`FaultPlan`] injected, in injection order.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// Injections in the order they happened.
    pub injected: Vec<InjectedFault>,
    /// Total analyzed requests the plan saw.
    pub requests: u64,
    /// Total journal appends the plan saw.
    pub appends: u64,
}

impl FaultReport {
    /// Index of the first corrupted journal append, if any: replaying the
    /// journal must yield exactly the records before it (prefix
    /// semantics).
    #[must_use]
    pub fn first_faulty_append(&self) -> Option<u64> {
        self.injected.iter().find_map(|fault| match fault {
            InjectedFault::Write { append, .. } => Some(*append),
            _ => None,
        })
    }
}

/// A seeded, deterministic schedule of faults (see the [module
/// documentation](self)).  Rates are per-mille probabilities drawn
/// independently at each fault point.
#[derive(Debug)]
pub struct FaultPlan {
    rng: StdRng,
    panic_per_mille: u32,
    guard_fire_per_mille: u32,
    budget_exhaust_per_mille: u32,
    write_fault_per_mille: u32,
    report: FaultReport,
}

impl FaultPlan {
    /// A plan injecting nothing (useful as a baseline in A/B harnesses).
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        Self::from_seed(seed, 0, 0, 0)
    }

    /// A plan drawing each fault kind independently with the given
    /// per-mille rates at every fault point, all derived from `seed`.
    #[must_use]
    pub fn from_seed(
        seed: u64,
        panic_per_mille: u32,
        guard_fire_per_mille: u32,
        write_fault_per_mille: u32,
    ) -> Self {
        FaultPlan {
            rng: StdRng::seed_from_u64(seed),
            panic_per_mille,
            guard_fire_per_mille,
            budget_exhaust_per_mille: 0,
            write_fault_per_mille,
            report: FaultReport::default(),
        }
    }

    /// Adds seeded budget exhaustions at the given per-mille rate.  The
    /// extra draw happens only when the rate is non-zero, so plans built
    /// without it keep their seeded schedules bit-identical to the
    /// pre-budget format.
    #[must_use]
    pub fn with_budget_exhaust_per_mille(mut self, per_mille: u32) -> Self {
        self.budget_exhaust_per_mille = per_mille;
        self
    }

    /// Draws the faults for the next analyzed request.
    pub fn next_request(&mut self) -> RequestFaults {
        let request = self.report.requests;
        self.report.requests += 1;
        let faults = RequestFaults {
            analysis_panic: self.rng.gen_range(0u32..1000) < self.panic_per_mille,
            guard_fire: self.rng.gen_range(0u32..1000) < self.guard_fire_per_mille,
            budget_exhaust: self.budget_exhaust_per_mille > 0
                && self.rng.gen_range(0u32..1000) < self.budget_exhaust_per_mille,
        };
        if faults.analysis_panic {
            self.report
                .injected
                .push(InjectedFault::AnalysisPanic { request });
        }
        if faults.guard_fire {
            self.report
                .injected
                .push(InjectedFault::GuardFire { request });
        }
        if faults.budget_exhaust {
            self.report
                .injected
                .push(InjectedFault::BudgetExhaust { request });
        }
        faults
    }

    /// Draws the fault (if any) for the next journal append.
    pub fn next_append(&mut self) -> Option<WriteFault> {
        let append = self.report.appends;
        self.report.appends += 1;
        if self.rng.gen_range(0u32..1000) >= self.write_fault_per_mille {
            return None;
        }
        // Torn writes and bit flips in equal measure; the exact shape is
        // drawn from the seeded stream so replays reproduce it.  A short
        // write keeps at least one but fewer than the 12 header bytes of
        // a frame, so every injected tear is guaranteed *visible* to the
        // reader — the harness's recovery-boundary ground truth depends
        // on the first faulted append really ending the valid prefix.
        // (`keep = 0` — a record lost without a trace — is deliberately
        // never drawn: with later appends following it, the journal stays
        // fully parseable and the loss boundary would be unobservable.)
        let fault = if self.rng.gen_range(0u32..2) == 0 {
            WriteFault::ShortWrite {
                keep: self.rng.gen_range(1u64..12) as usize,
            }
        } else {
            WriteFault::BitFlip {
                bit: self.rng.gen_range(0u64..1024),
            }
        };
        self.report
            .injected
            .push(InjectedFault::Write { append, fault });
        Some(fault)
    }

    /// What has been injected so far.
    #[must_use]
    pub fn report(&self) -> &FaultReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultPlan::from_seed(42, 300, 200, 400);
        let mut b = FaultPlan::from_seed(42, 300, 200, 400);
        for _ in 0..200 {
            assert_eq!(a.next_request(), b.next_request());
            assert_eq!(a.next_append(), b.next_append());
        }
        assert_eq!(a.report().injected, b.report().injected);
        assert!(!a.report().injected.is_empty(), "rates high enough to fire");
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let mut plan = FaultPlan::quiet(7);
        for _ in 0..100 {
            assert_eq!(plan.next_request(), RequestFaults::default());
            assert_eq!(plan.next_append(), None);
        }
        assert!(plan.report().injected.is_empty());
        assert_eq!(plan.report().first_faulty_append(), None);
    }

    #[test]
    fn budget_exhaustions_draw_only_when_enabled() {
        // A zero budget rate adds no RNG draw: the schedule is
        // bit-identical to a plan built before the fault kind existed.
        let mut plain = FaultPlan::from_seed(42, 300, 200, 400);
        let mut disabled = FaultPlan::from_seed(42, 300, 200, 400).with_budget_exhaust_per_mille(0);
        for _ in 0..200 {
            assert_eq!(plain.next_request(), disabled.next_request());
            assert_eq!(plain.next_append(), disabled.next_append());
        }
        // Rate 1000/1000: every request exhausts, and the report records
        // each injection with its request index.
        let mut always = FaultPlan::quiet(9).with_budget_exhaust_per_mille(1000);
        for request in 0..20u64 {
            assert!(always.next_request().budget_exhaust, "request {request}");
        }
        assert_eq!(always.report().injected.len(), 20);
        assert!(matches!(
            always.report().injected[3],
            InjectedFault::BudgetExhaust { request: 3 }
        ));
    }

    #[test]
    fn first_faulty_append_is_the_recovery_boundary() {
        let mut plan = FaultPlan::from_seed(3, 0, 0, 1000);
        let fault = plan.next_append();
        assert!(fault.is_some(), "rate 1000/1000 always fires");
        assert_eq!(plan.report().first_faulty_append(), Some(0));
    }
}
