//! The `edf-serve` binary: the admission-control service behind a line
//! protocol on stdin/stdout, one request per line, one reply per request.
//!
//! ```text
//! ADMIT  <tenant> <cost> <deadline> [period]   admit a component
//! WHATIF <tenant> <cost> <deadline> [period]   hypothetical admit
//! EVICT  <tenant> <id>                         remove a committed component
//! STAT   <tenant>                              committed-system summary
//! MODE   exact | budget <micros>               switch the SLA mode
//! QUIT                                         shut down
//! ```
//!
//! A component with a `period` is periodic; without one it is a one-shot
//! arriving at time zero.  Replies are single lines:
//!
//! ```text
//! ADMITTED id=<id> verdict=<v> iters=<n> us=<elapsed>
//! REJECTED verdict=<v> iters=<n> us=<elapsed>
//! UNDETERMINED verdict=<v> iters=<n> us=<elapsed>
//! WHATIF <admit|reject|unknown> verdict=<v> iters=<n> us=<elapsed>
//! EVICTED id=<id>                  | ERR <message>
//! STAT tenant=<t> components=<n> utilization=<u>
//! MODE exact | MODE budget us=<micros>
//! BYE
//! ```

use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

use edf_analysis::workload::DemandComponent;
use edf_model::Time;
use edf_serve::{AdmissionDecision, AdmissionService, SlaMode};

fn main() -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve(stdin.lock(), stdout.lock())
}

/// Drives the service over any line-oriented transport (the binary uses
/// stdin/stdout; the tests use in-memory buffers).
fn serve(input: impl BufRead, mut output: impl Write) -> io::Result<()> {
    let mut service = AdmissionService::new();
    for line in input.lines() {
        let line = line?;
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        let reply = dispatch(&mut service, request);
        let done = reply == "BYE";
        writeln!(output, "{reply}")?;
        output.flush()?;
        if done {
            break;
        }
    }
    Ok(())
}

/// Parses one request line and runs it against the service.
fn dispatch(service: &mut AdmissionService, request: &str) -> String {
    let mut words = request.split_whitespace();
    let verb = words.next().expect("request is non-empty");
    let rest: Vec<&str> = words.collect();
    match verb.to_ascii_uppercase().as_str() {
        "ADMIT" => admission(service, &rest, true),
        "WHATIF" => admission(service, &rest, false),
        "EVICT" => evict(service, &rest),
        "STAT" => stat(service, &rest),
        "MODE" => mode(service, &rest),
        "QUIT" => "BYE".to_owned(),
        other => format!("ERR unknown command {other}"),
    }
}

/// `ADMIT`/`WHATIF <tenant> <cost> <deadline> [period]`.
fn admission(service: &mut AdmissionService, args: &[&str], commit: bool) -> String {
    let (Some(&tenant), Some(component)) = (args.first(), parse_component(&args[1..])) else {
        return "ERR usage: ADMIT|WHATIF <tenant> <cost> <deadline> [period]".to_owned();
    };
    let start = Instant::now();
    let response = if commit {
        service.admit(tenant, component)
    } else {
        service.what_if(tenant, component)
    };
    let elapsed = start.elapsed().as_micros();
    let verdict = response.analysis.verdict;
    let iterations = response.analysis.iterations;
    let tail = format!("verdict={verdict} iters={iterations} us={elapsed}");
    if commit {
        match response.decision {
            AdmissionDecision::Admitted(id) => format!("ADMITTED id={id} {tail}"),
            AdmissionDecision::Rejected => format!("REJECTED {tail}"),
            AdmissionDecision::Undetermined => format!("UNDETERMINED {tail}"),
        }
    } else {
        let outcome = match response.decision {
            AdmissionDecision::Admitted(_) => "admit",
            AdmissionDecision::Rejected => "reject",
            AdmissionDecision::Undetermined => "unknown",
        };
        format!("WHATIF {outcome} {tail}")
    }
}

/// `EVICT <tenant> <id>`.
fn evict(service: &mut AdmissionService, args: &[&str]) -> String {
    let (Some(&tenant), Some(id)) = (
        args.first(),
        args.get(1).and_then(|word| word.parse::<u64>().ok()),
    ) else {
        return "ERR usage: EVICT <tenant> <id>".to_owned();
    };
    if service.evict(tenant, id) {
        format!("EVICTED id={id}")
    } else {
        format!("ERR no component {id} for tenant {tenant}")
    }
}

/// `STAT <tenant>`.
fn stat(service: &mut AdmissionService, args: &[&str]) -> String {
    let Some(&tenant) = args.first() else {
        return "ERR usage: STAT <tenant>".to_owned();
    };
    match service.stat(tenant) {
        Some(stat) => format!(
            "STAT tenant={tenant} components={} utilization={:.6}",
            stat.components, stat.utilization
        ),
        None => format!("ERR unknown tenant {tenant}"),
    }
}

/// `MODE exact` or `MODE budget <micros>`.
fn mode(service: &mut AdmissionService, args: &[&str]) -> String {
    match args {
        ["exact"] => {
            service.set_mode(SlaMode::Exact);
            "MODE exact".to_owned()
        }
        ["budget", micros] => match micros.parse::<u64>() {
            Ok(micros) => {
                service.set_mode(SlaMode::Budgeted {
                    deadline: Duration::from_micros(micros),
                });
                format!("MODE budget us={micros}")
            }
            Err(_) => "ERR usage: MODE exact | MODE budget <micros>".to_owned(),
        },
        _ => "ERR usage: MODE exact | MODE budget <micros>".to_owned(),
    }
}

/// Parses `<cost> <deadline> [period]` into a demand component.
fn parse_component(args: &[&str]) -> Option<DemandComponent> {
    let parse = |word: &&str| word.parse::<u64>().ok();
    match args {
        [cost, deadline] => Some(DemandComponent::one_shot(
            Time::new(parse(cost)?),
            Time::new(parse(deadline)?),
            Time::new(0),
        )),
        [cost, deadline, period] => Some(DemandComponent::periodic(
            Time::new(parse(cost)?),
            Time::new(parse(deadline)?),
            Time::new(parse(period)?),
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(script: &str) -> Vec<String> {
        let mut output = Vec::new();
        serve(script.as_bytes(), &mut output).expect("in-memory transport");
        String::from_utf8(output)
            .expect("utf-8 replies")
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn protocol_round_trip() {
        let replies = drive(
            "ADMIT a 4 9 10\nWHATIF a 9 9 10\nSTAT a\nEVICT a 0\nSTAT a\nMODE budget 0\nADMIT a 4 9 10\nMODE exact\nQUIT\n",
        );
        assert!(replies[0].starts_with("ADMITTED id=0 verdict=feasible"));
        assert!(replies[1].starts_with("WHATIF reject verdict=infeasible"));
        assert!(replies[2].starts_with("STAT tenant=a components=1"));
        assert_eq!(replies[3], "EVICTED id=0");
        assert!(replies[4].starts_with("STAT tenant=a components=0"));
        assert_eq!(replies[5], "MODE budget us=0");
        assert!(replies[6].starts_with("UNDETERMINED verdict=unknown"));
        assert_eq!(replies[7], "MODE exact");
        assert_eq!(replies[8], "BYE");
        assert_eq!(replies.len(), 9);
    }

    #[test]
    fn malformed_requests_answer_err_and_keep_serving() {
        let replies =
            drive("ADMIT a one 9 10\nEVICT a\nFROB x\nSTAT ghost\nADMIT b 1 5 10\nQUIT\n");
        assert!(replies[0].starts_with("ERR usage: ADMIT"));
        assert!(replies[1].starts_with("ERR usage: EVICT"));
        assert!(replies[2].starts_with("ERR unknown command"));
        assert!(replies[3].starts_with("ERR unknown tenant"));
        assert!(replies[4].starts_with("ADMITTED id=0"));
        assert_eq!(replies[5], "BYE");
    }
}
