//! The `edf-serve` binary: the admission-control service behind a line
//! protocol on stdin/stdout, one request per line, one reply per request.
//!
//! # Usage
//!
//! ```text
//! edf-serve [--journal <path>] [--watchdog <micros>] [--work-rate <units-per-us>]
//! ```
//!
//! * `--journal <path>` — attach the durable journal at `path`: the
//!   service first **recovers** (replays the journal's valid prefix,
//!   rebuilding every tenant's committed state bit-identically), then
//!   appends every mutation before applying it.
//! * `--watchdog <micros>` — guard every request with a `micros`
//!   allowance (default hysteresis: degrade to budgeted mode after 3
//!   consecutive trips, recover after 8 clean requests).  The allowance
//!   is enforced **budget-first**: it is converted once to deterministic
//!   work units at the service's work rate and metered at the analysis
//!   loops' budget checkpoints, with the wall clock kept only as a
//!   backstop against mis-calibration — so shedding decisions are
//!   bit-reproducible across machines.
//! * `--work-rate <units-per-us>` — pin the wall-clock → work-unit
//!   conversion rate instead of calibrating it at startup.  Without this
//!   flag the service runs a short (~2 ms) reference analysis once at
//!   launch and derives the rate from it.
//!
//! # Requests
//!
//! ```text
//! ADMIT  <tenant> <cost> <deadline> [period]   admit a component
//! WHATIF <tenant> <cost> <deadline> [period]   hypothetical admit
//! EVICT  <tenant> <id>                         remove a committed component
//! STAT   <tenant>                              committed-system summary
//! MODE   exact | budget <micros> | units <n>   switch the SLA mode
//! SYNC                                         fsync the journal
//! SNAPSHOT                                     compact the journal
//! HEALTH                                       service health summary
//! QUIT                                         shut down
//! ```
//!
//! A component with a `period` is periodic; without one it is a one-shot
//! arriving at time zero.  Replies are single lines:
//!
//! ```text
//! ADMITTED id=<id> verdict=<v> iters=<n> us=<elapsed>
//! REJECTED verdict=<v> iters=<n> us=<elapsed>
//! UNDETERMINED verdict=<v> iters=<n> us=<elapsed>
//! WHATIF <admit|reject|unknown> verdict=<v> iters=<n> us=<elapsed>
//! EVICTED id=<id>
//! STAT tenant=<t> components=<n> utilization=<u>
//! MODE exact | MODE budget us=<micros> | MODE units=<n>
//! SYNCED | SNAPSHOTTED records=<n>
//! HEALTH tenants=<n> degraded=<bool> guard_trips=<n> panics_isolated=<n>
//!        budget_exhaustions=<n> work_rate=<units-per-us>
//! BYE
//! ERR code=<code> <detail>
//! ```
//!
//! `MODE budget <micros>` expresses the per-request allowance in wall
//! time (converted once to units at the work rate); `MODE units <n>`
//! expresses it directly in deterministic work units, which is
//! machine-independent and therefore exactly reproducible.  A request
//! whose allowance runs out answers `UNDETERMINED verdict=unknown` —
//! honest, never fabricated — and increments `budget_exhaustions` in
//! `HEALTH`.  `guard_trips` counts only exhaustions that bind on the
//! *watchdog* allowance (or the wall-clock backstop), so a tight SLA
//! budget alone never drives the shed/degrade hysteresis.
//!
//! # Error taxonomy
//!
//! Every failed request answers exactly one `ERR code=<code> <detail>`
//! line; the codes are stable protocol contract:
//!
//! | code | meaning |
//! |------|---------|
//! | `bad-line` | non-UTF-8 bytes or line over the 4096-byte cap |
//! | `unknown-command` | unrecognized verb |
//! | `usage` | recognized verb, malformed arguments |
//! | `invalid-component` | zero cost, zero relative deadline or zero period |
//! | `tenant-limit` / `component-limit` / `tenant-name` | resource caps |
//! | `unknown-tenant` / `unknown-component` | target does not exist |
//! | `analysis-panic` | analysis panicked; tenant view rebuilt, no verdict fabricated |
//! | `journal` | journal I/O failed; the mutation was rolled back |
//! | `no-journal` | `SYNC`/`SNAPSHOT` without `--journal` |
//!
//! # Durability and recovery
//!
//! With `--journal`, every committed mutation (tenant creation,
//! admission, eviction, mode change) is appended — checksummed — to the
//! journal *before* it takes effect, and the append is handed to the OS
//! (`write_all`) before the reply is sent: a committed mutation survives
//! **process death** (`kill -9`) unconditionally.  Surviving **machine
//! death** (power loss) additionally requires `SYNC` (`fsync`).  On
//! restart, the journal's valid prefix is replayed; a torn tail from a
//! crash mid-append is truncated at the first corrupt record, losing at
//! most the unacknowledged suffix — never the committed prefix.
//! `SNAPSHOT` compacts the log to the minimal record sequence for the
//! current state (written beside the journal, synced and renamed into
//! place, so a crash mid-compaction leaves either the old or the new
//! journal intact).

use std::io;
use std::process::ExitCode;
use std::time::Duration;

use edf_serve::{protocol, AdmissionService, WatchdogConfig};

fn main() -> ExitCode {
    let mut journal_path: Option<String> = None;
    let mut watchdog_micros: Option<u64> = None;
    let mut work_rate: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--journal" => match args.next() {
                Some(path) => journal_path = Some(path),
                None => return usage("--journal needs a path"),
            },
            "--watchdog" => match args.next().map(|word| word.parse::<u64>()) {
                Some(Ok(micros)) => watchdog_micros = Some(micros),
                _ => return usage("--watchdog needs a micros value"),
            },
            "--work-rate" => match args.next().map(|word| word.parse::<u64>()) {
                Some(Ok(rate)) if rate > 0 => work_rate = Some(rate),
                _ => return usage("--work-rate needs a positive units-per-us value"),
            },
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    let mut service = match journal_path {
        Some(path) => match AdmissionService::recover(&path) {
            Ok(service) => service,
            Err(error) => {
                eprintln!("edf-serve: cannot recover journal {path}: {error}");
                return ExitCode::FAILURE;
            }
        },
        None => AdmissionService::new(),
    };
    if let Some(micros) = watchdog_micros {
        service.set_watchdog(Some(WatchdogConfig::with_guard(Duration::from_micros(
            micros,
        ))));
    }
    match work_rate {
        Some(rate) => service.set_work_rate(rate),
        None => {
            service.calibrate_work_rate();
        }
    }

    let stdin = io::stdin();
    let stdout = io::stdout();
    match protocol::serve(&mut service, stdin.lock(), stdout.lock()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("edf-serve: transport error: {error}");
            ExitCode::FAILURE
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("edf-serve: {problem}");
    eprintln!(
        "usage: edf-serve [--journal <path>] [--watchdog <micros>] [--work-rate <units-per-us>]"
    );
    ExitCode::FAILURE
}
