//! The `edf-serve` line protocol: capped raw-byte line reading, request
//! classification, dispatch and reply formatting.
//!
//! The binary (`src/main.rs`) is a thin wrapper over [`serve`]; keeping
//! the protocol here lets the fuzz and fault-injection tests drive the
//! *exact* production serve loop over in-memory transports.
//!
//! # Robustness contract
//!
//! * **One reply per line, always.**  Every non-empty input line —
//!   well-formed or not — produces exactly one reply line; blank lines
//!   produce none.  The loop never panics and never exits on bad input
//!   (only on `QUIT`, end of input, or a real transport I/O error).
//! * **Raw bytes in.**  Lines are read as bytes and decoded lossily:
//!   non-UTF-8 input answers `ERR code=bad-line` instead of killing the
//!   process (the pre-hardening loop died on the first invalid byte).
//! * **Length cap.**  A line longer than [`MAX_LINE_BYTES`] answers
//!   `ERR code=bad-line` and the remainder of the oversized line is
//!   drained without buffering it, so unbounded input cannot exhaust
//!   memory.
//! * **Stable error codes.**  Every error reply is
//!   `ERR code=<code> <detail>`; the codes come from
//!   [`RequestError::code`] and never change meaning.

use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

use edf_analysis::workload::DemandComponent;
use edf_model::Time;

use crate::{
    validate_component, AdmissionDecision, AdmissionService, ComponentFault, RequestError, SlaMode,
};

/// Longest accepted request line in bytes (excluding the newline).
/// Longer lines answer `ERR code=bad-line` and are drained, not buffered.
pub const MAX_LINE_BYTES: usize = 4096;

/// What one raw input line turned out to be (see [`classify_line`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineClass {
    /// Whitespace only: skipped, no reply.
    Blank,
    /// Over [`MAX_LINE_BYTES`]: one `ERR code=bad-line` reply.
    TooLong,
    /// Contains invalid UTF-8: one `ERR code=bad-line` reply.
    BadUtf8,
    /// A well-formed candidate request (trimmed).
    Request(String),
}

/// Classifies one raw line (without its newline).  `truncated` reports
/// that the reader hit the length cap before the newline — the rest of
/// the physical line was discarded.  Shared between the serve loop and
/// the protocol fuzz tests so both agree on what counts as a request.
#[must_use]
pub fn classify_line(bytes: &[u8], truncated: bool) -> LineClass {
    if truncated {
        return LineClass::TooLong;
    }
    match std::str::from_utf8(bytes) {
        Err(_) => LineClass::BadUtf8,
        Ok(text) => {
            let trimmed = text.trim();
            if trimmed.is_empty() {
                LineClass::Blank
            } else {
                LineClass::Request(trimmed.to_owned())
            }
        }
    }
}

/// Reads one line as raw bytes, capped at [`MAX_LINE_BYTES`]; the
/// oversized remainder is drained without buffering.  Returns
/// `Ok(None)` at end of input, otherwise the line bytes (newline
/// stripped) and whether the cap truncated it.
///
/// # Errors
///
/// Real transport I/O errors only — malformed *content* never errors.
pub fn read_raw_line(input: &mut impl BufRead) -> io::Result<Option<(Vec<u8>, bool)>> {
    let mut line = Vec::new();
    let mut truncated = false;
    loop {
        let available = input.fill_buf()?;
        if available.is_empty() {
            // End of input: the final unterminated line still counts.
            return Ok((!line.is_empty() || truncated).then_some((line, truncated)));
        }
        let (chunk, found_newline) = match available.iter().position(|&byte| byte == b'\n') {
            Some(position) => (&available[..position], true),
            None => (available, false),
        };
        if !truncated {
            let room = MAX_LINE_BYTES - line.len();
            if chunk.len() > room {
                line.extend_from_slice(&chunk[..room]);
                truncated = true;
            } else {
                line.extend_from_slice(chunk);
            }
        }
        let consumed = chunk.len() + usize::from(found_newline);
        input.consume(consumed);
        if found_newline {
            // Strip a trailing '\r' so CRLF transports behave like LF.
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some((line, truncated)));
        }
    }
}

/// Drives the service over any line-oriented transport (the binary uses
/// stdin/stdout; the tests use in-memory buffers).  See the [module
/// docs](self) for the robustness contract.
///
/// # Errors
///
/// Real transport I/O errors only.
pub fn serve(
    service: &mut AdmissionService,
    mut input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    while let Some((bytes, truncated)) = read_raw_line(&mut input)? {
        let request = match classify_line(&bytes, truncated) {
            LineClass::Blank => continue,
            LineClass::TooLong => {
                let error = RequestError::BadLine {
                    reason: "line over length cap",
                };
                writeln!(output, "ERR {error}")?;
                output.flush()?;
                continue;
            }
            LineClass::BadUtf8 => {
                let error = RequestError::BadLine {
                    reason: "invalid utf-8",
                };
                writeln!(output, "ERR {error}")?;
                output.flush()?;
                continue;
            }
            LineClass::Request(request) => request,
        };
        let reply = dispatch(service, &request);
        let done = reply == "BYE";
        writeln!(output, "{reply}")?;
        output.flush()?;
        if done {
            break;
        }
    }
    Ok(())
}

/// Parses one request line and runs it against the service.  Always
/// returns exactly one reply line; errors render as
/// `ERR code=<code> <detail>`.
#[must_use]
pub fn dispatch(service: &mut AdmissionService, request: &str) -> String {
    let mut words = request.split_whitespace();
    let Some(verb) = words.next() else {
        return format!(
            "ERR {}",
            RequestError::BadLine {
                reason: "empty request"
            }
        );
    };
    let rest: Vec<&str> = words.collect();
    let result = match verb.to_ascii_uppercase().as_str() {
        "ADMIT" => admission(service, &rest, true),
        "WHATIF" => admission(service, &rest, false),
        "EVICT" => evict(service, &rest),
        "STAT" => stat(service, &rest),
        "MODE" => mode(service, &rest),
        "SYNC" => sync(service),
        "SNAPSHOT" => snapshot(service),
        "HEALTH" => Ok(health(service)),
        "QUIT" => Ok("BYE".to_owned()),
        other => Err(RequestError::UnknownCommand {
            verb: other.to_owned(),
        }),
    };
    match result {
        Ok(reply) => reply,
        Err(error) => format!("ERR {error}"),
    }
}

/// `ADMIT`/`WHATIF <tenant> <cost> <deadline> [period]`.
fn admission(
    service: &mut AdmissionService,
    args: &[&str],
    commit: bool,
) -> Result<String, RequestError> {
    let usage = "ADMIT|WHATIF <tenant> <cost> <deadline> [period]";
    let component_args = args.get(1..).unwrap_or(&[]);
    let (Some(&tenant), Some(component)) = (args.first(), parse_component(component_args)?) else {
        return Err(RequestError::Usage { usage });
    };
    let start = Instant::now();
    let response = if commit {
        service.admit(tenant, component)?
    } else {
        service.what_if(tenant, component)?
    };
    let elapsed = start.elapsed().as_micros();
    let verdict = response.analysis.verdict;
    let iterations = response.analysis.iterations;
    let tail = format!("verdict={verdict} iters={iterations} us={elapsed}");
    Ok(if commit {
        match response.decision {
            AdmissionDecision::Admitted(id) => format!("ADMITTED id={id} {tail}"),
            AdmissionDecision::Rejected => format!("REJECTED {tail}"),
            AdmissionDecision::Undetermined => format!("UNDETERMINED {tail}"),
        }
    } else {
        let outcome = match response.decision {
            AdmissionDecision::Admitted(_) => "admit",
            AdmissionDecision::Rejected => "reject",
            AdmissionDecision::Undetermined => "unknown",
        };
        format!("WHATIF {outcome} {tail}")
    })
}

/// `EVICT <tenant> <id>`.
fn evict(service: &mut AdmissionService, args: &[&str]) -> Result<String, RequestError> {
    let (Some(&tenant), Some(id)) = (
        args.first(),
        args.get(1).and_then(|word| word.parse::<u64>().ok()),
    ) else {
        return Err(RequestError::Usage {
            usage: "EVICT <tenant> <id>",
        });
    };
    service.evict(tenant, id)?;
    Ok(format!("EVICTED id={id}"))
}

/// `STAT <tenant>`.
fn stat(service: &mut AdmissionService, args: &[&str]) -> Result<String, RequestError> {
    let Some(&tenant) = args.first() else {
        return Err(RequestError::Usage {
            usage: "STAT <tenant>",
        });
    };
    match service.stat(tenant) {
        Some(stat) => Ok(format!(
            "STAT tenant={tenant} components={} utilization={:.6}",
            stat.components, stat.utilization
        )),
        None => Err(RequestError::UnknownTenant {
            tenant: tenant.to_owned(),
        }),
    }
}

/// `MODE exact`, `MODE budget <micros>` or `MODE units <units>`.
fn mode(service: &mut AdmissionService, args: &[&str]) -> Result<String, RequestError> {
    let usage = "MODE exact | MODE budget <micros> | MODE units <units>";
    match args {
        ["exact"] => {
            service.set_mode(SlaMode::Exact)?;
            Ok("MODE exact".to_owned())
        }
        ["budget", micros] => match micros.parse::<u64>() {
            Ok(micros) => {
                service.set_mode(SlaMode::Budgeted {
                    deadline: Duration::from_micros(micros),
                })?;
                Ok(format!("MODE budget us={micros}"))
            }
            Err(_) => Err(RequestError::Usage { usage }),
        },
        ["units", units] => match units.parse::<u64>() {
            Ok(units) => {
                service.set_mode(SlaMode::BudgetedUnits { units })?;
                Ok(format!("MODE units={units}"))
            }
            Err(_) => Err(RequestError::Usage { usage }),
        },
        _ => Err(RequestError::Usage { usage }),
    }
}

/// `SYNC`: fsync the journal (machine-death durability for everything
/// committed so far).
fn sync(service: &mut AdmissionService) -> Result<String, RequestError> {
    service.sync()?;
    Ok("SYNCED".to_owned())
}

/// `SNAPSHOT`: compact the journal to the current committed state.
fn snapshot(service: &mut AdmissionService) -> Result<String, RequestError> {
    let records = service.snapshot()?;
    Ok(format!("SNAPSHOTTED records={records}"))
}

/// `HEALTH`: one-line service health summary.
fn health(service: &AdmissionService) -> String {
    format!(
        "HEALTH tenants={} degraded={} guard_trips={} panics_isolated={} budget_exhaustions={} work_rate={}",
        service.tenant_count(),
        service.is_degraded(),
        service.guard_trips(),
        service.panics_isolated(),
        service.budget_exhaustions(),
        service.work_rate()
    )
}

/// Parses `<cost> <deadline> [period]` into a validated demand component.
/// Unparsable words are a usage problem (`Ok(None)` bubbles into the
/// caller's usage error); parsable-but-invalid values are a component
/// fault with its own code.
fn parse_component(args: &[&str]) -> Result<Option<DemandComponent>, RequestError> {
    let parse = |word: &&str| word.parse::<u64>().ok();
    let component = match args {
        [cost, deadline] => match (parse(cost), parse(deadline)) {
            (Some(cost), Some(deadline)) => Some(DemandComponent::one_shot(
                Time::new(cost),
                Time::new(deadline),
                Time::new(0),
            )),
            _ => None,
        },
        [cost, deadline, period] => match (parse(cost), parse(deadline), parse(period)) {
            (Some(cost), Some(deadline), Some(period)) => Some(DemandComponent::periodic(
                Time::new(cost),
                Time::new(deadline),
                Time::new(period),
            )),
            _ => None,
        },
        _ => None,
    };
    match component {
        None => Ok(None),
        Some(component) => {
            validate_component(&component)
                .map_err(|fault: ComponentFault| RequestError::InvalidComponent { fault })?;
            Ok(Some(component))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(script: &str) -> Vec<String> {
        drive_bytes(script.as_bytes())
    }

    fn drive_bytes(script: &[u8]) -> Vec<String> {
        let mut service = AdmissionService::new();
        let mut output = Vec::new();
        serve(&mut service, script, &mut output).expect("in-memory transport");
        String::from_utf8(output)
            .expect("utf-8 replies")
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn protocol_round_trip() {
        let replies = drive(
            "ADMIT a 4 9 10\nWHATIF a 9 9 10\nSTAT a\nEVICT a 0\nSTAT a\nMODE budget 0\nADMIT a 4 9 10\nMODE exact\nQUIT\n",
        );
        assert!(replies[0].starts_with("ADMITTED id=0 verdict=feasible"));
        assert!(replies[1].starts_with("WHATIF reject verdict=infeasible"));
        assert!(replies[2].starts_with("STAT tenant=a components=1"));
        assert_eq!(replies[3], "EVICTED id=0");
        assert!(replies[4].starts_with("STAT tenant=a components=0"));
        assert_eq!(replies[5], "MODE budget us=0");
        assert!(replies[6].starts_with("UNDETERMINED verdict=unknown"));
        assert_eq!(replies[7], "MODE exact");
        assert_eq!(replies[8], "BYE");
        assert_eq!(replies.len(), 9);
    }

    #[test]
    fn unit_mode_round_trip_and_health_counters() {
        let replies = drive(
            "MODE units 0\nADMIT a 4 9 10\nHEALTH\nMODE units 1000000\nADMIT a 4 9 10\nMODE exact\nQUIT\n",
        );
        assert_eq!(replies[0], "MODE units=0");
        assert!(
            replies[1].starts_with("UNDETERMINED verdict=unknown"),
            "zero units exhaust at the first checkpoint: {}",
            replies[1]
        );
        assert!(
            replies[2].starts_with("HEALTH tenants=1 degraded=false"),
            "{}",
            replies[2]
        );
        assert!(
            replies[2].contains(" budget_exhaustions=1 "),
            "the exhausted admission is counted: {}",
            replies[2]
        );
        assert!(replies[2].contains(" work_rate="), "{}", replies[2]);
        assert_eq!(replies[3], "MODE units=1000000");
        assert!(
            replies[4].starts_with("ADMITTED id=0 verdict=feasible"),
            "a generous unit budget answers exactly: {}",
            replies[4]
        );
        assert_eq!(replies[5], "MODE exact");
        assert_eq!(replies[6], "BYE");
    }

    #[test]
    fn malformed_requests_answer_coded_errors_and_keep_serving() {
        let replies =
            drive("ADMIT a one 9 10\nEVICT a\nFROB x\nSTAT ghost\nADMIT b 1 5 10\nQUIT\n");
        assert!(replies[0].starts_with("ERR code=usage"));
        assert!(replies[1].starts_with("ERR code=usage"));
        assert!(replies[2].starts_with("ERR code=unknown-command"));
        assert!(replies[3].starts_with("ERR code=unknown-tenant"));
        assert!(replies[4].starts_with("ADMITTED id=0"));
        assert_eq!(replies[5], "BYE");
    }

    #[test]
    fn invalid_components_answer_their_fault_code() {
        let replies = drive("ADMIT a 0 9 10\nADMIT a 1 0 10\nADMIT a 1 9 0\nSTAT a\nQUIT\n");
        assert!(replies[0].starts_with("ERR code=invalid-component zero cost"));
        assert!(replies[1].starts_with("ERR code=invalid-component zero relative deadline"));
        assert!(replies[2].starts_with("ERR code=invalid-component zero period"));
        assert!(
            replies[3].starts_with("ERR code=unknown-tenant"),
            "invalid admissions never create the tenant: {}",
            replies[3]
        );
        assert_eq!(replies[4], "BYE");
    }

    #[test]
    fn non_utf8_lines_answer_bad_line_and_keep_serving() {
        let mut script: Vec<u8> = Vec::new();
        script.extend_from_slice(b"ADMIT a 4 9 10\n");
        script.extend_from_slice(&[0xff, 0xfe, 0x80, b'\n']);
        script.extend_from_slice(b"STAT a\nQUIT\n");
        let replies = drive_bytes(&script);
        assert!(replies[0].starts_with("ADMITTED id=0"));
        assert!(replies[1].starts_with("ERR code=bad-line invalid utf-8"));
        assert!(replies[2].starts_with("STAT tenant=a components=1"));
        assert_eq!(replies[3], "BYE");
        assert_eq!(replies.len(), 4);
    }

    #[test]
    fn oversized_lines_answer_bad_line_without_buffering() {
        let mut script: Vec<u8> = Vec::new();
        script.extend_from_slice(b"ADMIT ");
        script.extend(std::iter::repeat_n(b'x', MAX_LINE_BYTES * 4));
        script.push(b'\n');
        script.extend_from_slice(b"ADMIT a 4 9 10\nQUIT\n");
        let replies = drive_bytes(&script);
        assert!(replies[0].starts_with("ERR code=bad-line line over length cap"));
        assert!(replies[1].starts_with("ADMITTED id=0"));
        assert_eq!(replies[2], "BYE");
        assert_eq!(replies.len(), 3);
    }

    #[test]
    fn sync_and_snapshot_without_a_journal_answer_no_journal() {
        let replies = drive("SYNC\nSNAPSHOT\nHEALTH\nQUIT\n");
        assert!(replies[0].starts_with("ERR code=no-journal"));
        assert!(replies[1].starts_with("ERR code=no-journal"));
        assert!(replies[2].starts_with("HEALTH tenants=0 degraded=false"));
        assert_eq!(replies[3], "BYE");
    }

    #[test]
    fn classify_line_agrees_with_the_serve_loop() {
        assert_eq!(classify_line(b"", false), LineClass::Blank);
        assert_eq!(classify_line(b"   \t ", false), LineClass::Blank);
        assert_eq!(classify_line(b"anything", true), LineClass::TooLong);
        assert_eq!(classify_line(&[0xff, 0x00], false), LineClass::BadUtf8);
        assert_eq!(
            classify_line(b"  STAT a  ", false),
            LineClass::Request("STAT a".to_owned())
        );
    }

    #[test]
    fn read_raw_line_caps_and_drains() {
        let mut input: &[u8] = b"short\r\nlong line\n";
        let (line, truncated) = read_raw_line(&mut input).unwrap().unwrap();
        assert_eq!(line, b"short");
        assert!(!truncated, "CR stripped, under the cap");
        let (line, truncated) = read_raw_line(&mut input).unwrap().unwrap();
        assert_eq!(line, b"long line");
        assert!(!truncated);
        assert!(read_raw_line(&mut input).unwrap().is_none(), "end of input");
    }
}
