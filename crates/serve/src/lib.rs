//! # `edf-serve` — online EDF admission control over the view family
//!
//! A long-running service answering **admit / evict / what-if** requests
//! for thousands of independently prepared workloads ("tenants"), each
//! held behind one [`EditView`]: every request is a structural edit of the
//! tenant's [`PreparedWorkload`], re-analyzed in place through the delta
//! path (deadline-order repair, bounds refresh, in-place kernel rebuild)
//! instead of a cold re-preparation.
//!
//! The service commits an edit only when the paper's all-approximated
//! exact test accepts the edited system; a rejected or hypothetical edit
//! is rolled back through [`WorkloadView::revert`], so a tenant's
//! committed state is always a feasibility-checked snapshot.
//!
//! Two service-level objectives are offered ([`SlaMode`]):
//!
//! * **Exact** — every request runs the exact test; verdicts are always
//!   decisive (unless a [watchdog guard](WatchdogConfig) fires first).
//! * **Budgeted** — an anytime escalation over the capped-level test
//!   constructor ([`AllApproximatedTest::with_max_level`]): levels are
//!   doubled until a decisive verdict lands or the per-request allowance
//!   runs out, at which point the service answers an **honest
//!   [`Verdict::Unknown`]** (and declines the admission) rather than a
//!   wrong verdict.  Decisive capped verdicts are exact, so budgeting
//!   never trades correctness — only decisiveness.
//!
//! Degradation is **budget-first**: every wall-clock allowance (the
//! budgeted deadline, the watchdog guard, the degraded deadline) is
//! converted once into deterministic [`WorkBudget`] units at the
//! service's calibrated [`work rate`](AdmissionService::work_rate), and
//! the escalation ladder meters each request against its own unit
//! budget.  Which requests exhaust — and at which level — is therefore a
//! pure function of the workload and the configured allowances, making
//! load shedding, Exact→Budgeted hysteresis and wave-batched shedding
//! bit-reproducible across runs and machines (the wall clock survives
//! only as a backstop against mis-calibration).
//! [`SlaMode::BudgetedUnits`] expresses the allowance directly in units,
//! with no wall-clock conversion at all.
//!
//! Concurrent request batches go through [`AdmissionService::admit_many`]
//! / [`AdmissionService::what_if_many`], which fan independent tenants out
//! across the CPU cores via [`batch::analyze_many_prepared`] with one
//! [`AnalysisScratch`] arena per worker.
//!
//! # Fault tolerance
//!
//! The service is built to survive crashes, overload and internal faults
//! with honest answers:
//!
//! * **Durability** — with a [`journal::Journal`] attached (see
//!   [`AdmissionService::recover`]), every committed mutation (tenant
//!   creation, admission, eviction, mode change) is appended to an
//!   append-only checksummed log *before* it takes effect in memory.
//!   Restarting from the journal replays the valid prefix and rebuilds
//!   every tenant bit-identically; a torn tail from a crash is truncated,
//!   never misread.
//! * **Watchdog + load shedding** — with a [`WatchdogConfig`] set, every
//!   request (Exact mode included) runs under a guard allowance,
//!   budget-first: the guard converts to deterministic work units and a
//!   request that cannot decide within them answers an honest
//!   [`Verdict::Unknown`]; sustained trips degrade the service to
//!   [`SlaMode::Budgeted`] with hysteresis
//!   ([`AdmissionService::is_degraded`]) so one pathological tenant
//!   cannot stall the queue.  Guard-unit exhaustions (and the wall-clock
//!   backstop, should calibration be badly off) count as trips; SLA
//!   budget exhaustions do not.
//! * **Panic isolation** — per-request analysis runs under
//!   [`catch_unwind`]; a panic marks the tenant's view poisoned
//!   ([`WorkloadView::is_poisoned`]) and rebuilds it cold from the
//!   committed state, so one bad request can never corrupt or kill other
//!   tenants.  The request is answered with
//!   [`RequestError::AnalysisPanic`] — exactly one reply, never a
//!   fabricated verdict.
//! * **Structured errors + caps** — every fallible entry point returns a
//!   [`RequestError`] with a stable machine-readable
//!   [`code`](RequestError::code); [`ServiceLimits`] bounds tenant count,
//!   per-tenant components and tenant-name length so malformed or hostile
//!   traffic cannot exhaust the service.
//! * **Deterministic fault injection** — a seeded [`fault::FaultPlan`]
//!   can be attached ([`AdmissionService::set_fault_plan`]) to inject
//!   analysis panics, watchdog fires, budget exhaustions and journal
//!   write faults through the *production* isolation and checkpoint
//!   paths; the `fault_injection` test harness drives it and asserts the
//!   invariants (one reply per request, no wrong verdicts, state always
//!   recoverable).
//!
//! The `edf-serve` binary (see `src/main.rs`) exposes the service over a
//! line protocol on stdin/stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fault;
pub mod journal;
pub mod protocol;

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::{Duration, Instant};

use edf_analysis::batch::{self, BoxedTest};
use edf_analysis::tests::AllApproximatedTest;
use edf_analysis::workload::DemandComponent;
use edf_analysis::{
    Analysis, AnalysisScratch, EditView, FeasibilityTest, PreparedWorkload, Progress,
    ProgressPhase, Verdict, WorkBudget, WorkloadView,
};
use edf_model::Time;

use fault::{FaultPlan, RequestFaults};
use journal::{Journal, JournalRecord, JournalState};

/// Service-level objective for analysis latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlaMode {
    /// Run the uncapped exact test on every request.  Verdicts are always
    /// decisive; latency is whatever exactness costs (unless a watchdog
    /// guard caps it).
    Exact,
    /// Anytime mode: escalate capped-level tests (levels 2, 4, 8, …)
    /// until a decisive verdict or the allowance runs out, then answer an
    /// honest [`Verdict::Unknown`].  A decisive answer under a cap is
    /// exact, so this mode can return a *missing* verdict but never a
    /// *wrong* one.  The deadline is converted **once** into
    /// deterministic work units at the service's calibrated
    /// [`work rate`](AdmissionService::work_rate); the ladder then meters
    /// units, not the clock, so the degradation point is reproducible.
    Budgeted {
        /// Per-request analysis deadline.  [`Duration::ZERO`] permits only
        /// the free checks (the exact `U > 1` comparison).
        deadline: Duration,
    },
    /// Anytime mode with the per-request allowance expressed directly in
    /// deterministic [`WorkBudget`] units — no wall-clock conversion at
    /// all, so the same request stream degrades identically on any
    /// machine.  A unit is one checkpointed analysis-loop step (see
    /// [`edf_analysis::budget`]).
    BudgetedUnits {
        /// Per-request work-unit allowance.  Zero permits only the free
        /// checks (the exact `U > 1` comparison).
        units: u64,
    },
}

/// The request watchdog: a guard allowance over every request plus the
/// hysteresis thresholds for load shedding.
///
/// The guard is configured as wall-clock time but enforced
/// **budget-first**: it converts once into deterministic work units at
/// the service's calibrated [`work rate`](AdmissionService::work_rate),
/// and a request that exhausts the guard units before a decisive verdict
/// answers an honest [`Verdict::Unknown`] and counts one *trip* — the
/// same request stream trips at the same requests on every run.  (The
/// wall clock itself is retained as a backstop: if calibration is badly
/// off, the elapsed guard still trips.)
/// [`trip_threshold`](Self::trip_threshold) consecutive trips degrade the
/// service to [`SlaMode::Budgeted`] with
/// [`degraded_deadline`](Self::degraded_deadline);
/// [`recovery_threshold`](Self::recovery_threshold) consecutive clean
/// requests restore the configured mode.  Trips are counted only against
/// the guard itself — a request that merely exhausts its (shorter) SLA
/// budget is not a trip, so a deliberately tight budget never triggers
/// shedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Wall-clock guard applied to every request, Exact mode included.
    pub guard: Duration,
    /// Consecutive guard trips before degrading to budgeted mode.
    pub trip_threshold: u32,
    /// Consecutive clean requests before restoring the configured mode.
    pub recovery_threshold: u32,
    /// The [`SlaMode::Budgeted`] deadline used while degraded.
    pub degraded_deadline: Duration,
}

impl WatchdogConfig {
    /// A watchdog with the given guard and default hysteresis: degrade
    /// after 3 consecutive trips to a budget of `guard / 4`, recover
    /// after 8 consecutive clean requests.
    #[must_use]
    pub fn with_guard(guard: Duration) -> Self {
        WatchdogConfig {
            guard,
            trip_threshold: 3,
            recovery_threshold: 8,
            degraded_deadline: guard / 4,
        }
    }
}

/// Resource caps enforced at the service API layer, so malformed or
/// hostile traffic cannot exhaust memory through unbounded tenant or
/// component growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceLimits {
    /// Maximum number of tenants the service will create.
    pub max_tenants: usize,
    /// Maximum committed components per tenant.
    pub max_components_per_tenant: usize,
    /// Maximum tenant-name length in bytes.
    pub max_tenant_name_bytes: usize,
}

impl Default for ServiceLimits {
    fn default() -> Self {
        ServiceLimits {
            max_tenants: 65_536,
            max_components_per_tenant: 65_536,
            max_tenant_name_bytes: 256,
        }
    }
}

/// Why a [`DemandComponent`] was refused before any analysis ran (see
/// [`validate_component`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentFault {
    /// Zero execution cost: demands nothing, admits vacuously, and breaks
    /// downstream rationals expecting positive cost.
    ZeroCost,
    /// The (relative) deadline is zero: the first deadline does not lie
    /// after the release offset, so no positive-cost job can ever meet it
    /// and dbf windows collapse.
    ZeroDeadline,
    /// A periodic component with period zero: an infinite arrival rate,
    /// undefined utilization.
    ZeroPeriod,
}

impl fmt::Display for ComponentFault {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentFault::ZeroCost => write!(formatter, "zero cost"),
            ComponentFault::ZeroDeadline => write!(formatter, "zero relative deadline"),
            ComponentFault::ZeroPeriod => write!(formatter, "zero period"),
        }
    }
}

/// Rejects malformed components before a [`DemandComponent`] reaches the
/// analysis: zero cost, zero relative deadline (deadline not after the
/// release offset) or zero period.
///
/// The `edf-model` constructors (`Task::new`, `EventStream::new`,
/// `Transaction`, `ArrivalCurve`) already validate these invariants
/// through `Result`-returning constructors; the raw
/// [`DemandComponent`] constructors used by the wire protocol do not,
/// so the service front door enforces them here.
///
/// # Errors
///
/// The specific [`ComponentFault`] found.
pub fn validate_component(component: &DemandComponent) -> Result<(), ComponentFault> {
    if component.wcet().is_zero() {
        return Err(ComponentFault::ZeroCost);
    }
    if component.first_deadline() <= component.release_offset() {
        return Err(ComponentFault::ZeroDeadline);
    }
    if component.period().is_some_and(|period| period.is_zero()) {
        return Err(ComponentFault::ZeroPeriod);
    }
    Ok(())
}

/// A structured request failure with a stable, machine-readable
/// [`code`](Self::code).  The wire protocol renders these as
/// `ERR code=<code> <detail>` lines; the codes are part of the protocol
/// contract and never change meaning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The input line was not a well-formed request line (non-UTF-8
    /// bytes, over the length cap, …).
    BadLine {
        /// What was wrong with the line.
        reason: &'static str,
    },
    /// The request verb is not part of the protocol.
    UnknownCommand {
        /// The unrecognized verb.
        verb: String,
    },
    /// The verb was recognized but its arguments were malformed.
    Usage {
        /// The expected form.
        usage: &'static str,
    },
    /// The component failed [`validate_component`].
    InvalidComponent {
        /// The specific fault.
        fault: ComponentFault,
    },
    /// Creating the tenant would exceed [`ServiceLimits::max_tenants`].
    TenantLimit {
        /// The configured cap.
        limit: usize,
    },
    /// The admission would exceed
    /// [`ServiceLimits::max_components_per_tenant`].
    ComponentLimit {
        /// The configured cap.
        limit: usize,
    },
    /// The tenant name exceeds [`ServiceLimits::max_tenant_name_bytes`].
    TenantName {
        /// The configured cap.
        limit: usize,
    },
    /// The named tenant does not exist.
    UnknownTenant {
        /// The requested tenant.
        tenant: String,
    },
    /// The tenant exists but holds no component with this id.
    UnknownComponent {
        /// The requested tenant.
        tenant: String,
        /// The unknown component id.
        id: u64,
    },
    /// The analysis panicked; the tenant's view was rebuilt from its
    /// committed state and no verdict was fabricated.
    AnalysisPanic {
        /// The tenant whose request panicked.
        tenant: String,
    },
    /// A journal I/O operation failed; the mutation was rolled back so
    /// memory never runs ahead of an append the journal refused.
    Journal {
        /// The underlying I/O error, stringified.
        error: String,
    },
    /// The operation needs a journal but none is attached.
    NoJournal,
}

impl RequestError {
    /// The stable machine-readable error code (the `code=` value on the
    /// wire).
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            RequestError::BadLine { .. } => "bad-line",
            RequestError::UnknownCommand { .. } => "unknown-command",
            RequestError::Usage { .. } => "usage",
            RequestError::InvalidComponent { .. } => "invalid-component",
            RequestError::TenantLimit { .. } => "tenant-limit",
            RequestError::ComponentLimit { .. } => "component-limit",
            RequestError::TenantName { .. } => "tenant-name",
            RequestError::UnknownTenant { .. } => "unknown-tenant",
            RequestError::UnknownComponent { .. } => "unknown-component",
            RequestError::AnalysisPanic { .. } => "analysis-panic",
            RequestError::Journal { .. } => "journal",
            RequestError::NoJournal => "no-journal",
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(formatter, "code={}", self.code())?;
        match self {
            RequestError::BadLine { reason } => write!(formatter, " {reason}"),
            RequestError::UnknownCommand { verb } => write!(formatter, " {verb}"),
            RequestError::Usage { usage } => write!(formatter, " {usage}"),
            RequestError::InvalidComponent { fault } => write!(formatter, " {fault}"),
            RequestError::TenantLimit { limit } => write!(formatter, " max {limit} tenants"),
            RequestError::ComponentLimit { limit } => {
                write!(formatter, " max {limit} components per tenant")
            }
            RequestError::TenantName { limit } => {
                write!(formatter, " tenant name over {limit} bytes")
            }
            RequestError::UnknownTenant { tenant } => write!(formatter, " {tenant}"),
            RequestError::UnknownComponent { tenant, id } => {
                write!(formatter, " no component {id} for tenant {tenant}")
            }
            RequestError::AnalysisPanic { tenant } => {
                write!(
                    formatter,
                    " analysis panicked for tenant {tenant}; view rebuilt"
                )
            }
            RequestError::Journal { error } => write!(formatter, " {error}"),
            RequestError::NoJournal => write!(formatter, " no journal attached"),
        }
    }
}

impl std::error::Error for RequestError {}

/// The service's decision on an [`AdmissionService::admit`] request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The edited system is feasible; the component was committed under
    /// this service-assigned id (stable across later edits, usable with
    /// [`AdmissionService::evict`]).
    Admitted(u64),
    /// The edited system provably misses a deadline; the edit was rolled
    /// back.
    Rejected,
    /// The budget (or watchdog guard) expired before a decisive verdict;
    /// the edit was rolled back (never admitted on an unknown).
    Undetermined,
}

/// Outcome of an admit or what-if request: the decision plus the analysis
/// that produced it (iteration counts make the §5 effort metric visible
/// per request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionResponse {
    /// What the service decided (and, for admissions, the component id).
    pub decision: AdmissionDecision,
    /// The deciding analysis.
    pub analysis: Analysis,
}

/// A point-in-time summary of one tenant's committed system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantStat {
    /// Number of committed demand components.
    pub components: usize,
    /// Total utilization of the committed system.
    pub utilization: f64,
}

/// One tenant: the edit view over its committed system plus the committed
/// `(id, component)` list, parallel to the view's component indices.  The
/// committed list is the rebuild source of truth after a panic and the
/// snapshot source for journal compaction.
#[derive(Debug)]
struct Tenant {
    view: EditView,
    committed: Vec<(u64, DemandComponent)>,
}

impl Tenant {
    fn empty() -> Self {
        Tenant {
            view: EditView::new(&PreparedWorkload::from_components(Vec::new())),
            committed: Vec::new(),
        }
    }

    fn from_committed(committed: Vec<(u64, DemandComponent)>) -> Self {
        let components: Vec<DemandComponent> =
            committed.iter().map(|&(_, component)| component).collect();
        Tenant {
            view: EditView::new(&PreparedWorkload::from_components(components)),
            committed,
        }
    }

    /// Rebuilds the view cold from the committed list (the recovery path
    /// after a panic unwound mid-edit).
    fn rebuild(&mut self) {
        let components: Vec<DemandComponent> = self
            .committed
            .iter()
            .map(|&(_, component)| component)
            .collect();
        self.view
            .rebuild_from(&PreparedWorkload::from_components(components));
    }
}

/// The admission-control service: a map of tenants, the active
/// [`SlaMode`], one reusable [`AnalysisScratch`] for the single-request
/// path, and the optional fault-tolerance attachments (journal, watchdog,
/// fault plan — see the [module docs](self)).
///
/// # Examples
///
/// ```
/// use edf_analysis::workload::DemandComponent;
/// use edf_model::Time;
/// use edf_serve::{AdmissionDecision, AdmissionService};
///
/// let mut service = AdmissionService::new();
/// let heavy = DemandComponent::periodic(Time::new(6), Time::new(8), Time::new(10));
/// let id = match service.admit("tenant-a", heavy).unwrap().decision {
///     AdmissionDecision::Admitted(id) => id,
///     other => panic!("feasible component declined: {other:?}"),
/// };
///
/// // A second heavy component would push utilization past one: rejected,
/// // and the tenant's committed state is untouched.
/// let response = service.admit("tenant-a", heavy).unwrap();
/// assert_eq!(response.decision, AdmissionDecision::Rejected);
/// assert_eq!(service.stat("tenant-a").unwrap().components, 1);
///
/// service.evict("tenant-a", id).unwrap();
/// assert_eq!(service.stat("tenant-a").unwrap().components, 0);
/// ```
#[derive(Debug)]
pub struct AdmissionService {
    tenants: HashMap<String, Tenant>,
    mode: SlaMode,
    scratch: AnalysisScratch,
    next_id: u64,
    limits: ServiceLimits,
    journal: Option<Journal>,
    watchdog: Option<WatchdogConfig>,
    fault_plan: Option<FaultPlan>,
    degraded: bool,
    trip_streak: u32,
    healthy_streak: u32,
    guard_trips: u64,
    panics_isolated: u64,
    budget_exhaustions: u64,
    work_rate: u64,
}

/// Default wall-clock→work-unit conversion: work units per microsecond.
/// One checkpointed loop step lands in the tens of nanoseconds on a
/// mid-range core, so 25 units/µs is a conservative stand-in until
/// [`AdmissionService::calibrate_work_rate`] measures the real rate.
const DEFAULT_WORK_RATE: u64 = 25;

/// Converts a wall-clock allowance into deterministic work units at the
/// given rate (units per microsecond), saturating at `u64::MAX`.
fn units_for(allowance: Duration, work_rate: u64) -> u64 {
    u64::try_from(allowance.as_micros())
        .unwrap_or(u64::MAX)
        .saturating_mul(work_rate)
}

impl Default for AdmissionService {
    fn default() -> Self {
        Self::new()
    }
}

impl AdmissionService {
    /// A fresh service in [`SlaMode::Exact`] with no tenants.
    #[must_use]
    pub fn new() -> Self {
        Self::with_mode(SlaMode::Exact)
    }

    /// A fresh service in the given mode.
    #[must_use]
    pub fn with_mode(mode: SlaMode) -> Self {
        AdmissionService {
            tenants: HashMap::new(),
            mode,
            scratch: AnalysisScratch::new(),
            next_id: 0,
            limits: ServiceLimits::default(),
            journal: None,
            watchdog: None,
            fault_plan: None,
            degraded: false,
            trip_streak: 0,
            healthy_streak: 0,
            guard_trips: 0,
            panics_isolated: 0,
            budget_exhaustions: 0,
            work_rate: DEFAULT_WORK_RATE,
        }
    }

    /// Opens (or creates) the journal at `path`, replays its valid prefix
    /// and returns a service whose tenants, mode and id allocator are the
    /// recovered pre-crash committed state.  All subsequent mutations are
    /// journaled before they take effect.
    ///
    /// # Errors
    ///
    /// Real I/O errors from opening or truncating the journal file;
    /// corruption is not an error (it bounds the replayed prefix).
    pub fn recover(path: impl AsRef<Path>) -> io::Result<Self> {
        let (journal, records) = Journal::open(path)?;
        let mut state = JournalState::default();
        for record in &records {
            state.apply(record);
        }
        let mut service = Self::with_mode(state.mode.unwrap_or(SlaMode::Exact));
        for (tenant, committed) in state.tenants {
            service
                .tenants
                .insert(tenant, Tenant::from_committed(committed));
        }
        service.next_id = state.next_id;
        service.journal = Some(journal);
        Ok(service)
    }

    /// The active service-level objective (the configured one, even while
    /// degraded — see [`AdmissionService::is_degraded`]).
    #[must_use]
    pub fn mode(&self) -> SlaMode {
        self.mode
    }

    /// Switches the service-level objective for subsequent requests
    /// (journaled when a journal is attached).
    ///
    /// # Errors
    ///
    /// [`RequestError::Journal`] if the mode record cannot be appended;
    /// the mode is left unchanged.
    pub fn set_mode(&mut self, mode: SlaMode) -> Result<(), RequestError> {
        self.journal_append(&JournalRecord::Mode(mode))?;
        self.mode = mode;
        Ok(())
    }

    /// Replaces the resource caps.
    pub fn set_limits(&mut self, limits: ServiceLimits) {
        self.limits = limits;
    }

    /// The active resource caps.
    #[must_use]
    pub fn limits(&self) -> ServiceLimits {
        self.limits
    }

    /// Installs (or removes) the request watchdog.
    pub fn set_watchdog(&mut self, watchdog: Option<WatchdogConfig>) {
        self.watchdog = watchdog;
        self.degraded = false;
        self.trip_streak = 0;
        self.healthy_streak = 0;
    }

    /// Attaches a deterministic fault plan; every subsequent request and
    /// journal append consults it (see [`fault::FaultPlan`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Detaches and returns the fault plan (with its injection report).
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault_plan.take()
    }

    /// Whether the watchdog has currently shed load (degraded to
    /// [`SlaMode::Budgeted`] with the configured degraded deadline).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Total watchdog guard trips so far.
    #[must_use]
    pub fn guard_trips(&self) -> u64 {
        self.guard_trips
    }

    /// Total analysis panics isolated (each rebuilt one tenant view).
    #[must_use]
    pub fn panics_isolated(&self) -> u64 {
        self.panics_isolated
    }

    /// Total requests whose work budget exhausted before a decisive
    /// verdict (each answered an honest [`Verdict::Unknown`] carrying a
    /// progress record).
    #[must_use]
    pub fn budget_exhaustions(&self) -> u64 {
        self.budget_exhaustions
    }

    /// The wall-clock→work-unit conversion rate, in units per
    /// microsecond.  Wall-clock allowances ([`SlaMode::Budgeted`], the
    /// watchdog guard, the degraded deadline) are multiplied by this rate
    /// once per request to obtain the deterministic unit budget the
    /// analysis is metered against.
    #[must_use]
    pub fn work_rate(&self) -> u64 {
        self.work_rate
    }

    /// Pins the wall-clock→work-unit rate explicitly (units per
    /// microsecond, clamped to at least 1).  Tests and deterministic
    /// replays set the rate instead of calibrating, so unit budgets are
    /// machine-independent.
    pub fn set_work_rate(&mut self, units_per_micro: u64) {
        self.work_rate = units_per_micro.max(1);
    }

    /// Calibrates the wall-clock→work-unit rate **once** from the wall
    /// clock: runs the exact test over a fixed reference workload under
    /// an unlimited (metering) budget for a couple of milliseconds and
    /// divides units spent by elapsed microseconds.  After this single
    /// measurement every degradation decision is a pure function of
    /// workloads and configured allowances — the clock is consulted again
    /// only as a backstop.  Returns the measured rate.
    pub fn calibrate_work_rate(&mut self) -> u64 {
        // A mid-size sporadic set with spread deadlines and periods: the
        // exact test walks thousands of checkpointed steps per pass, so
        // the units-per-microsecond quotient is well conditioned.
        let components: Vec<DemandComponent> = (0..24)
            .map(|index| {
                DemandComponent::periodic(
                    Time::new(1 + index % 5),
                    Time::new(11 + 7 * index),
                    Time::new(40 + 9 * index),
                )
            })
            .collect();
        let prepared = PreparedWorkload::from_components(components);
        let test = AllApproximatedTest::new();
        let mut spent = 0u64;
        let mut rounds = 0u32;
        let start = Instant::now();
        while rounds < 4 || start.elapsed() < Duration::from_millis(2) {
            self.scratch.set_budget(WorkBudget::unlimited());
            let _ = test.analyze_prepared_with(&prepared, &mut self.scratch);
            spent = spent.saturating_add(self.scratch.take_budget().spent());
            rounds += 1;
        }
        let micros = u64::try_from(start.elapsed().as_micros())
            .unwrap_or(u64::MAX)
            .max(1);
        self.work_rate = (spent / micros).max(1);
        self.work_rate
    }

    /// Number of known tenants (admitting to a new name creates it).
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// `fsync`s the journal: everything committed so far survives machine
    /// death (process death is already covered by the append contract).
    ///
    /// # Errors
    ///
    /// [`RequestError::NoJournal`] without a journal;
    /// [`RequestError::Journal`] on I/O failure.
    pub fn sync(&mut self) -> Result<(), RequestError> {
        match self.journal.as_mut() {
            Some(journal) => journal.sync().map_err(|error| RequestError::Journal {
                error: error.to_string(),
            }),
            None => Err(RequestError::NoJournal),
        }
    }

    /// Compacts the journal to a snapshot of the current committed state
    /// (atomically: the replacement is written beside the journal, synced
    /// and renamed into place).  Returns the number of snapshot records.
    ///
    /// # Errors
    ///
    /// [`RequestError::NoJournal`] without a journal;
    /// [`RequestError::Journal`] on I/O failure.
    pub fn snapshot(&mut self) -> Result<u64, RequestError> {
        if self.journal.is_none() {
            return Err(RequestError::NoJournal);
        }
        let records = self.snapshot_records();
        let journal = self.journal.as_mut().expect("checked above");
        journal
            .compact(&records)
            .map_err(|error| RequestError::Journal {
                error: error.to_string(),
            })?;
        Ok(records.len() as u64)
    }

    /// The minimal record sequence reproducing the current committed
    /// state (what [`AdmissionService::snapshot`] writes).
    fn snapshot_records(&self) -> Vec<JournalRecord> {
        let mut records = vec![
            JournalRecord::Mode(self.mode),
            JournalRecord::NextId(self.next_id),
        ];
        for (name, tenant) in &self.tenants {
            records.push(JournalRecord::Tenant {
                tenant: name.clone(),
            });
            for &(id, component) in &tenant.committed {
                records.push(JournalRecord::Admit {
                    tenant: name.clone(),
                    id,
                    component,
                });
            }
        }
        records
    }

    /// Registers `tenant` with `base` as its initial committed system
    /// (unchecked for feasibility: the base is the operator's prior, not
    /// an admission — but each component must still pass
    /// [`validate_component`]).  Replaces any existing tenant of that
    /// name; returns the component ids assigned to the base components,
    /// in component order.
    ///
    /// # Errors
    ///
    /// Validation, cap or journal errors; on any error nothing changes.
    pub fn register_tenant(
        &mut self,
        tenant: &str,
        base: &PreparedWorkload,
    ) -> Result<Vec<u64>, RequestError> {
        self.check_tenant_name(tenant)?;
        if !self.tenants.contains_key(tenant) && self.tenants.len() >= self.limits.max_tenants {
            return Err(RequestError::TenantLimit {
                limit: self.limits.max_tenants,
            });
        }
        if base.components().len() > self.limits.max_components_per_tenant {
            return Err(RequestError::ComponentLimit {
                limit: self.limits.max_components_per_tenant,
            });
        }
        for component in base.components() {
            validate_component(component)
                .map_err(|fault| RequestError::InvalidComponent { fault })?;
        }
        let committed: Vec<(u64, DemandComponent)> = base
            .components()
            .iter()
            .enumerate()
            .map(|(offset, &component)| (self.next_id + offset as u64, component))
            .collect();
        self.journal_append(&JournalRecord::Tenant {
            tenant: tenant.to_owned(),
        })?;
        for &(id, component) in &committed {
            self.journal_append(&JournalRecord::Admit {
                tenant: tenant.to_owned(),
                id,
                component,
            })?;
        }
        self.next_id += committed.len() as u64;
        let ids: Vec<u64> = committed.iter().map(|&(id, _)| id).collect();
        self.tenants.insert(
            tenant.to_owned(),
            Tenant {
                view: EditView::new(base),
                committed,
            },
        );
        Ok(ids)
    }

    /// Admits `component` into `tenant`'s system if the edited system
    /// passes the active mode's analysis; otherwise rolls the edit back.
    /// Unknown tenants start from an empty system.  Committed admissions
    /// are journaled before they take effect.
    ///
    /// # Errors
    ///
    /// Validation, cap, journal or panic-isolation errors; on any error
    /// the committed state is unchanged.
    pub fn admit(
        &mut self,
        tenant: &str,
        component: DemandComponent,
    ) -> Result<AdmissionResponse, RequestError> {
        let faults = self.draw_request_faults();
        self.admit_inner(tenant, component, faults)
    }

    /// Answers "would this component be admitted?" without changing the
    /// tenant's committed state: the edit is applied, analyzed, and
    /// reverted.  Unknown tenants are evaluated against an empty system
    /// (and stay unregistered).
    ///
    /// # Errors
    ///
    /// Validation or panic-isolation errors; committed state is never
    /// changed either way.
    pub fn what_if(
        &mut self,
        tenant: &str,
        component: DemandComponent,
    ) -> Result<AdmissionResponse, RequestError> {
        let faults = self.draw_request_faults();
        self.what_if_inner(tenant, component, faults)
    }

    /// Removes the component with the given service-assigned id from
    /// `tenant` and commits the shrunk system (removal only reduces
    /// demand, so no re-admission test is needed).  The eviction is
    /// journaled before it takes effect.
    ///
    /// # Errors
    ///
    /// [`RequestError::UnknownTenant`] / [`RequestError::UnknownComponent`]
    /// when the target does not exist; [`RequestError::Journal`] if the
    /// record cannot be appended (state unchanged).
    pub fn evict(&mut self, tenant: &str, id: u64) -> Result<(), RequestError> {
        let Some(entry) = self.tenants.get_mut(tenant) else {
            return Err(RequestError::UnknownTenant {
                tenant: tenant.to_owned(),
            });
        };
        let Some(index) = entry
            .committed
            .iter()
            .position(|&(existing, _)| existing == id)
        else {
            return Err(RequestError::UnknownComponent {
                tenant: tenant.to_owned(),
                id,
            });
        };
        self.journal_append(&JournalRecord::Evict {
            tenant: tenant.to_owned(),
            id,
        })?;
        let entry = self.tenants.get_mut(tenant).expect("checked above");
        entry.committed.remove(index);
        entry.view.remove_component(index);
        entry.view.commit();
        Ok(())
    }

    /// A summary of `tenant`'s committed system, or `None` if unknown.
    /// Finalizes any pending lazy rollback first (hence `&mut self`).
    pub fn stat(&mut self, tenant: &str) -> Option<TenantStat> {
        let entry = self.tenants.get_mut(tenant)?;
        let prepared = entry.view.prepared();
        Some(TenantStat {
            components: prepared.components().len(),
            utilization: prepared.utilization(),
        })
    }

    /// Batched [`AdmissionService::admit`]: requests for *distinct*
    /// tenants are analyzed concurrently via
    /// [`batch::analyze_many_prepared`] (one scratch arena per worker);
    /// requests hitting the same tenant are serialized into successive
    /// waves, each wave seeing the commits of the previous one.  Responses
    /// are in request order — exactly one per request, errors included.
    pub fn admit_many(
        &mut self,
        requests: &[(&str, DemandComponent)],
    ) -> Vec<Result<AdmissionResponse, RequestError>> {
        self.run_waves(requests, true)
    }

    /// Batched [`AdmissionService::what_if`]: same wave scheduling as
    /// [`AdmissionService::admit_many`], but every edit is reverted, so no
    /// committed state changes (unknown tenants are registered empty, to
    /// keep the wave engine uniform).  Responses are in request order.
    pub fn what_if_many(
        &mut self,
        requests: &[(&str, DemandComponent)],
    ) -> Vec<Result<AdmissionResponse, RequestError>> {
        self.run_waves(requests, false)
    }

    /// Draws this request's injected faults from the attached plan (none
    /// without a plan).
    fn draw_request_faults(&mut self) -> RequestFaults {
        self.fault_plan
            .as_mut()
            .map_or_else(RequestFaults::default, FaultPlan::next_request)
    }

    /// The mode requests actually run under: the configured mode, or the
    /// watchdog's degraded budget while load is being shed.
    fn effective_mode(&self) -> SlaMode {
        match (self.degraded, self.watchdog) {
            (true, Some(config)) => SlaMode::Budgeted {
                deadline: config.degraded_deadline,
            },
            _ => self.mode,
        }
    }

    /// Feeds one guard observation into the hysteresis state machine.
    fn observe_guard(&mut self, tripped: bool) {
        let Some(config) = self.watchdog else {
            return;
        };
        if tripped {
            self.guard_trips += 1;
            self.healthy_streak = 0;
            self.trip_streak = self.trip_streak.saturating_add(1);
            if self.trip_streak >= config.trip_threshold {
                self.degraded = true;
            }
        } else {
            self.trip_streak = 0;
            if self.degraded {
                self.healthy_streak = self.healthy_streak.saturating_add(1);
                if self.healthy_streak >= config.recovery_threshold {
                    self.degraded = false;
                    self.healthy_streak = 0;
                }
            }
        }
    }

    /// Appends one record to the journal (no-op without one), routing
    /// through the fault plan's write-fault injection point.
    fn journal_append(&mut self, record: &JournalRecord) -> Result<(), RequestError> {
        let Some(journal) = self.journal.as_mut() else {
            return Ok(());
        };
        let fault = self.fault_plan.as_mut().and_then(FaultPlan::next_append);
        let result = match fault {
            Some(fault) => journal.append_faulty(record, fault),
            None => journal.append(record),
        };
        result.map_err(|error| RequestError::Journal {
            error: error.to_string(),
        })
    }

    /// Caps the tenant name length.
    fn check_tenant_name(&self, tenant: &str) -> Result<(), RequestError> {
        if tenant.len() > self.limits.max_tenant_name_bytes {
            return Err(RequestError::TenantName {
                limit: self.limits.max_tenant_name_bytes,
            });
        }
        Ok(())
    }

    /// Validation + caps shared by admit paths; also creates (and
    /// journals) the tenant when new.
    fn prepare_admit_target(
        &mut self,
        tenant: &str,
        component: DemandComponent,
    ) -> Result<(), RequestError> {
        validate_component(&component).map_err(|fault| RequestError::InvalidComponent { fault })?;
        self.check_tenant_name(tenant)?;
        match self.tenants.get(tenant) {
            Some(entry) => {
                if entry.committed.len() >= self.limits.max_components_per_tenant {
                    return Err(RequestError::ComponentLimit {
                        limit: self.limits.max_components_per_tenant,
                    });
                }
            }
            None => {
                if self.tenants.len() >= self.limits.max_tenants {
                    return Err(RequestError::TenantLimit {
                        limit: self.limits.max_tenants,
                    });
                }
                self.journal_append(&JournalRecord::Tenant {
                    tenant: tenant.to_owned(),
                })?;
                self.tenants.insert(tenant.to_owned(), Tenant::empty());
            }
        }
        Ok(())
    }

    /// The single-request admit path with explicit (possibly injected)
    /// faults — also the per-request retry path after a wave panic.
    fn admit_inner(
        &mut self,
        tenant: &str,
        component: DemandComponent,
        faults: RequestFaults,
    ) -> Result<AdmissionResponse, RequestError> {
        self.prepare_admit_target(tenant, component)?;
        let mode = self.effective_mode();
        let guard = self.watchdog.map(|config| config.guard);
        let work_rate = self.work_rate;
        let entry = self.tenants.get_mut(tenant).expect("prepared above");
        entry.view.insert_component(component);
        let outcome = {
            let view = &mut entry.view;
            let scratch = &mut self.scratch;
            catch_unwind(AssertUnwindSafe(|| {
                if faults.analysis_panic {
                    panic!("injected analysis panic");
                }
                analyze_one(
                    mode,
                    guard,
                    faults.guard_fire,
                    faults.budget_exhaust,
                    work_rate,
                    view.prepared(),
                    scratch,
                )
            }))
        };
        let (analysis, tripped) = match outcome {
            Ok(result) => result,
            Err(_) => return Err(self.isolate_panic(tenant)),
        };
        self.observe_guard(tripped);
        self.budget_exhaustions += u64::from(analysis.budget_exhausted());
        let entry = self.tenants.get_mut(tenant).expect("prepared above");
        let decision = if analysis.verdict.is_feasible() {
            let id = self.next_id;
            // Journal-first: if the append fails the admission is rolled
            // back, so memory never runs ahead of the journal.
            if let Err(error) = self.journal_append(&JournalRecord::Admit {
                tenant: tenant.to_owned(),
                id,
                component,
            }) {
                let entry = self.tenants.get_mut(tenant).expect("prepared above");
                entry.view.revert();
                return Err(error);
            }
            let entry = self.tenants.get_mut(tenant).expect("prepared above");
            entry.view.commit();
            entry.committed.push((id, component));
            self.next_id += 1;
            AdmissionDecision::Admitted(id)
        } else {
            // The rollback leaves the view dirty on purpose: the refresh
            // is paid lazily by whoever next needs the finalized state
            // (usually the next request's own finalize), keeping the
            // steady-state cost at one refresh per request.
            entry.view.revert();
            decline(analysis.verdict)
        };
        Ok(AdmissionResponse { decision, analysis })
    }

    /// The single-request what-if path with explicit faults.
    fn what_if_inner(
        &mut self,
        tenant: &str,
        component: DemandComponent,
        faults: RequestFaults,
    ) -> Result<AdmissionResponse, RequestError> {
        validate_component(&component).map_err(|fault| RequestError::InvalidComponent { fault })?;
        self.check_tenant_name(tenant)?;
        let mode = self.effective_mode();
        let guard = self.watchdog.map(|config| config.guard);
        let work_rate = self.work_rate;
        let outcome = match self.tenants.get_mut(tenant) {
            Some(entry) => {
                entry.view.insert_component(component);
                let view = &mut entry.view;
                let scratch = &mut self.scratch;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if faults.analysis_panic {
                        panic!("injected analysis panic");
                    }
                    analyze_one(
                        mode,
                        guard,
                        faults.guard_fire,
                        faults.budget_exhaust,
                        work_rate,
                        view.prepared(),
                        scratch,
                    )
                }));
                match outcome {
                    Ok(result) => {
                        // Lazy rollback, as in `admit_inner`.
                        entry.view.revert();
                        Ok(result)
                    }
                    Err(_) => Err(()),
                }
            }
            None => {
                let mut probe = Tenant::empty();
                probe.view.insert_component(component);
                let scratch = &mut self.scratch;
                catch_unwind(AssertUnwindSafe(|| {
                    if faults.analysis_panic {
                        panic!("injected analysis panic");
                    }
                    analyze_one(
                        mode,
                        guard,
                        faults.guard_fire,
                        faults.budget_exhaust,
                        work_rate,
                        probe.view.prepared(),
                        scratch,
                    )
                }))
                .map_err(|_| ())
            }
        };
        let (analysis, tripped) = match outcome {
            Ok(result) => result,
            Err(()) => return Err(self.isolate_panic(tenant)),
        };
        self.observe_guard(tripped);
        self.budget_exhaustions += u64::from(analysis.budget_exhausted());
        Ok(AdmissionResponse {
            decision: hypothetical(&analysis),
            analysis,
        })
    }

    /// The panic-isolation path: count it, rebuild the tenant's view cold
    /// from its committed list (probes and unknown tenants have nothing
    /// to rebuild), and replace the scratch arena a panic may have left
    /// inconsistent.
    fn isolate_panic(&mut self, tenant: &str) -> RequestError {
        self.panics_isolated += 1;
        self.scratch = AnalysisScratch::new();
        if let Some(entry) = self.tenants.get_mut(tenant) {
            entry.view.mark_poisoned();
            entry.rebuild();
        }
        RequestError::AnalysisPanic {
            tenant: tenant.to_owned(),
        }
    }

    /// Shared wave engine behind the batched entry points.  Per wave:
    /// apply one edit per distinct tenant and finalize (phase 1), analyze
    /// all finalized views in parallel under `catch_unwind` (phase 2),
    /// then commit or revert by verdict (phase 3).  A wave panic rebuilds
    /// every wave tenant from its committed state and retries each wave
    /// request through the individually isolated single-request path, so
    /// the faulty request alone errors.
    fn run_waves(
        &mut self,
        requests: &[(&str, DemandComponent)],
        commit_admissions: bool,
    ) -> Vec<Result<AdmissionResponse, RequestError>> {
        let mut responses: Vec<Option<Result<AdmissionResponse, RequestError>>> =
            (0..requests.len()).map(|_| None).collect();
        // Draw per-request faults up front, in request order, so batched
        // and sequential runs of the same plan inject identically.
        let faults: Vec<RequestFaults> = requests
            .iter()
            .map(|_| self.draw_request_faults())
            .collect();
        let mut remaining: Vec<usize> = Vec::with_capacity(requests.len());
        for (index, &(tenant, component)) in requests.iter().enumerate() {
            // Front-door checks first: invalid requests answer their
            // error without consuming a wave slot.
            match self.prepare_wave_target(tenant, component, commit_admissions) {
                Ok(()) => remaining.push(index),
                Err(error) => responses[index] = Some(Err(error)),
            }
        }
        while !remaining.is_empty() {
            // Phase 0: pick at most one pending request per tenant.
            let mut wave: Vec<usize> = Vec::with_capacity(remaining.len());
            let mut deferred: Vec<usize> = Vec::new();
            for request in remaining.drain(..) {
                let tenant = requests[request].0;
                if wave
                    .iter()
                    .any(|&scheduled| requests[scheduled].0 == tenant)
                {
                    deferred.push(request);
                } else {
                    wave.push(request);
                }
            }
            remaining = deferred;

            // Phase 1: apply each wave edit and finalize its view.
            for &request in &wave {
                let (tenant, component) = requests[request];
                let entry = self.tenants.get_mut(tenant).expect("prepared above");
                entry.view.insert_component(component);
                entry.view.prepared();
            }

            // Phase 2: analyze the finalized views of the wave in
            // parallel, isolated: the views are clean and shared-borrowed,
            // and a panic (injected or real) falls back to per-request
            // isolation below.
            let mode = self.effective_mode();
            let guard = self.watchdog.map(|config| config.guard);
            let work_rate = self.work_rate;
            let fired: Vec<bool> = wave
                .iter()
                .map(|&request| faults[request].guard_fire)
                .collect();
            let exhausted: Vec<bool> = wave
                .iter()
                .map(|&request| faults[request].budget_exhaust)
                .collect();
            let injected_panic = wave.iter().any(|&request| faults[request].analysis_panic);
            let outcome = {
                let prepared: Vec<&PreparedWorkload> = wave
                    .iter()
                    .map(|&request| self.tenants[requests[request].0].view.finalized())
                    .collect();
                catch_unwind(AssertUnwindSafe(|| {
                    if injected_panic {
                        panic!("injected analysis panic");
                    }
                    analyze_wave(mode, guard, work_rate, &prepared, &fired, &exhausted)
                }))
            };
            let (analyses, tripped) = match outcome {
                Ok(result) => result,
                Err(_) => {
                    // Rebuild every wave tenant cold (dropping the pending
                    // edits), then retry each request through the
                    // single-request path with its already-drawn faults:
                    // the faulty request errors, the others answer
                    // normally.
                    self.panics_isolated += 1;
                    self.scratch = AnalysisScratch::new();
                    for &request in &wave {
                        let entry = self
                            .tenants
                            .get_mut(requests[request].0)
                            .expect("prepared above");
                        entry.view.mark_poisoned();
                        entry.rebuild();
                    }
                    for &request in &wave {
                        let (tenant, component) = requests[request];
                        let response = if commit_admissions {
                            self.admit_inner(tenant, component, faults[request])
                        } else {
                            self.what_if_inner(tenant, component, faults[request])
                        };
                        responses[request] = Some(response);
                    }
                    continue;
                }
            };
            self.observe_guard(tripped);

            // Phase 3: commit admissions (journal-first), revert
            // everything else.
            for (&request, analysis) in wave.iter().zip(analyses) {
                let (tenant, component) = requests[request];
                self.budget_exhaustions += u64::from(analysis.budget_exhausted());
                let response = if commit_admissions && analysis.verdict.is_feasible() {
                    let id = self.next_id;
                    match self.journal_append(&JournalRecord::Admit {
                        tenant: tenant.to_owned(),
                        id,
                        component,
                    }) {
                        Ok(()) => {
                            let entry = self.tenants.get_mut(tenant).expect("prepared above");
                            entry.view.commit();
                            entry.committed.push((id, component));
                            self.next_id += 1;
                            Ok(AdmissionResponse {
                                decision: AdmissionDecision::Admitted(id),
                                analysis,
                            })
                        }
                        Err(error) => {
                            let entry = self.tenants.get_mut(tenant).expect("prepared above");
                            entry.view.revert();
                            Err(error)
                        }
                    }
                } else {
                    let entry = self.tenants.get_mut(tenant).expect("prepared above");
                    entry.view.revert();
                    let decision = if commit_admissions {
                        decline(analysis.verdict)
                    } else {
                        hypothetical(&analysis)
                    };
                    Ok(AdmissionResponse { decision, analysis })
                };
                responses[request] = Some(response);
            }
        }
        responses
            .into_iter()
            .map(|response| response.expect("every request answered"))
            .collect()
    }

    /// Front-door checks for one wave request; creates (and journals) the
    /// tenant when needed.  What-if waves register unknown tenants empty
    /// (to keep the wave engine uniform), matching the previous batched
    /// behavior.
    fn prepare_wave_target(
        &mut self,
        tenant: &str,
        component: DemandComponent,
        commit_admissions: bool,
    ) -> Result<(), RequestError> {
        if commit_admissions {
            self.prepare_admit_target(tenant, component)
        } else {
            validate_component(&component)
                .map_err(|fault| RequestError::InvalidComponent { fault })?;
            self.check_tenant_name(tenant)?;
            if !self.tenants.contains_key(tenant) {
                if self.tenants.len() >= self.limits.max_tenants {
                    return Err(RequestError::TenantLimit {
                        limit: self.limits.max_tenants,
                    });
                }
                self.journal_append(&JournalRecord::Tenant {
                    tenant: tenant.to_owned(),
                })?;
                self.tenants.insert(tenant.to_owned(), Tenant::empty());
            }
            Ok(())
        }
    }
}

/// Maps a non-feasible verdict to the matching declined decision.
fn decline(verdict: Verdict) -> AdmissionDecision {
    if verdict.is_infeasible() {
        AdmissionDecision::Rejected
    } else {
        AdmissionDecision::Undetermined
    }
}

/// Maps a what-if analysis to the decision an admit *would* have made.
fn hypothetical(analysis: &Analysis) -> AdmissionDecision {
    match analysis.verdict {
        // The id an admission would assign is not reserved by a what-if;
        // `u64::MAX` marks the hypothetical.
        Verdict::Feasible => AdmissionDecision::Admitted(u64::MAX),
        Verdict::Infeasible => AdmissionDecision::Rejected,
        Verdict::Unknown => AdmissionDecision::Undetermined,
    }
}

/// The work-unit allowances one request runs under: the SLA budget and
/// the watchdog guard, both already converted to deterministic units.
#[derive(Debug, Clone, Copy)]
struct UnitCaps {
    /// SLA allowance in units (`None` for [`SlaMode::Exact`]).
    sla: Option<u64>,
    /// Guard allowance in units (`None` without a watchdog).
    guard: Option<u64>,
}

impl UnitCaps {
    /// Converts the mode's and guard's wall-clock allowances once at the
    /// service's work rate.  [`SlaMode::BudgetedUnits`] passes through
    /// untouched.
    fn from_allowances(mode: SlaMode, guard: Option<Duration>, work_rate: u64) -> Self {
        let sla = match mode {
            SlaMode::Exact => None,
            SlaMode::Budgeted { deadline } => Some(units_for(deadline, work_rate)),
            SlaMode::BudgetedUnits { units } => Some(units),
        };
        UnitCaps {
            sla,
            guard: guard.map(|guard| units_for(guard, work_rate)),
        }
    }

    /// The binding per-request allowance, `None` when fully uncapped.
    fn cap(&self) -> Option<u64> {
        match (self.sla, self.guard) {
            (Some(sla), Some(guard)) => Some(sla.min(guard)),
            (Some(sla), None) => Some(sla),
            (None, Some(guard)) => Some(guard),
            (None, None) => None,
        }
    }

    /// Whether an exhausted budget counts as a *guard* trip: only when
    /// the spend overran the guard's own allowance (a tight SLA budget
    /// alone must not trigger load shedding).
    fn guard_tripped(&self, budget: &WorkBudget) -> bool {
        budget.is_exhausted() && self.guard.is_some_and(|units| budget.spent() > units)
    }
}

/// Analyzes one prepared system under the given mode and optional
/// watchdog guard, **budget-first**: the wall-clock allowances are
/// converted once to deterministic work units ([`UnitCaps`]) and the
/// escalation ladder (levels 2, 4, 8, …) meters every level against one
/// per-request [`WorkBudget`], so the request exhausts at the same step
/// on every run.  The wall clock is consulted only as a backstop between
/// levels, against mis-calibration; on the deterministic path the unit
/// budget always exhausts first.
///
/// Returns the analysis plus whether the *guard* (not the SLA budget)
/// was the binding exhausted allowance — the watchdog's trip signal.
/// `forced_fire` treats the guard as already expired (the fault plan's
/// simulated deadline fire): an immediate honest `Unknown`.
/// `forced_exhaust` shrinks the request's budget to zero units, driving
/// the exhaustion unwind through the production checkpoints.
fn analyze_one(
    mode: SlaMode,
    guard: Option<Duration>,
    forced_fire: bool,
    forced_exhaust: bool,
    work_rate: u64,
    prepared: &PreparedWorkload,
    scratch: &mut AnalysisScratch,
) -> (Analysis, bool) {
    if let Some(free) = free_verdict(prepared) {
        return (free, false);
    }
    if forced_fire {
        return (Analysis::trivial(Verdict::Unknown), true);
    }
    let caps = UnitCaps::from_allowances(mode, guard, work_rate);
    let cap = if forced_exhaust { Some(0) } else { caps.cap() };
    let Some(cap_units) = cap else {
        // Exact mode without a watchdog: the uncapped exact test, always
        // decisive — the pre-watchdog behavior, preserved bit-for-bit.
        return (
            AllApproximatedTest::new().analyze_prepared_with(prepared, scratch),
            false,
        );
    };
    let start = Instant::now();
    let mut budget = WorkBudget::limited(cap_units);
    let mut bounded_level = None;
    let mut level = 2u64;
    loop {
        // Entering a level costs one unit.  Small systems can answer
        // without their loops ever charging, so this is what keeps the
        // zero-allowance contract (`MODE budget 0` / `MODE units 0`
        // sheds every non-free request) and guarantees that a forced
        // exhaustion fault always unwinds to `Unknown`.
        if !budget.charge(1) {
            return (
                shed_analysis(&budget, bounded_level),
                caps.guard_tripped(&budget),
            );
        }
        let spent_before = budget.spent();
        scratch.set_budget(budget);
        let test = AllApproximatedTest::new().with_max_level(level);
        let mut analysis = test.analyze_prepared_with(prepared, scratch);
        budget = scratch.take_budget();
        if analysis.verdict.is_decisive() {
            return (analysis, false);
        }
        if budget.is_exhausted() {
            // Enrich the core's progress record with the deepest level
            // the ladder fully answered before the budget ran out.
            if let Some(progress) = analysis.progress.as_mut() {
                progress.bounded_level = bounded_level;
            }
            return (analysis, caps.guard_tripped(&budget));
        }
        bounded_level = Some(level);
        if let Some(guard) = guard {
            // Wall-clock backstop only: a mis-calibrated work rate still
            // cannot stall the service past the guard.
            if start.elapsed() >= guard {
                return (analysis, true);
            }
        }
        if level == u64::MAX || budget.spent() == spent_before {
            // Cannot escalate further, or the level charged nothing (no
            // meterable work left): answer the honest Unknown.
            return (analysis, false);
        }
        level = level.saturating_mul(2);
    }
}

/// Analyzes a wave of prepared systems under the given mode and optional
/// guard, fanning out across the CPU cores, **budget-first**: every
/// system gets its *own* per-request [`WorkBudget`] with the same unit
/// allowance a sequential request would get, carried across escalation
/// levels through [`batch::analyze_many_prepared_budgeted`].  Each level
/// runs only the still-undecided systems; a system whose budget exhausts
/// closes with an honest [`Verdict::Unknown`] while the rest keep
/// escalating.  Per-item budgets (not one shared wave pool) are what
/// make batched exhaustion bit-identical to sequential exhaustion.
///
/// `fired[i]` forces system `i` to an immediate honest `Unknown` (the
/// fault plan's simulated deadline fire); `exhausted[i]` shrinks its
/// budget to zero units, unwinding through the production checkpoints.
/// The returned flag reports whether the guard tripped for this wave
/// (forced fires and guard-unit exhaustions included).
fn analyze_wave(
    mode: SlaMode,
    guard: Option<Duration>,
    work_rate: u64,
    prepared: &[&PreparedWorkload],
    fired: &[bool],
    exhausted: &[bool],
) -> (Vec<Analysis>, bool) {
    let mut results: Vec<Analysis> = vec![Analysis::trivial(Verdict::Unknown); prepared.len()];
    let mut open: Vec<usize> = Vec::new();
    let mut tripped = false;
    for (index, system) in prepared.iter().enumerate() {
        // Free checks run even for forced fires, matching `analyze_one`:
        // the exact `U > 1` proof costs nothing, so it is sound to answer
        // it under any deadline.
        if let Some(free) = free_verdict(system) {
            results[index] = free;
            continue;
        }
        if fired[index] {
            tripped = true;
            continue;
        }
        open.push(index);
    }
    if open.is_empty() {
        return (results, tripped);
    }
    let caps = UnitCaps::from_allowances(mode, guard, work_rate);
    // Forced exhaustions run under a zero-unit budget whatever the mode:
    // the ladder's level-entry charge refuses immediately, exactly as a
    // sequential `analyze_one` with a zero cap would.
    let (forced, live): (Vec<usize>, Vec<usize>) =
        open.into_iter().partition(|&index| exhausted[index]);
    for &index in &forced {
        let mut budget = WorkBudget::limited(0);
        let held = budget.charge(1);
        debug_assert!(!held, "a zero budget refuses the entry charge");
        results[index] = shed_analysis(&budget, None);
        tripped |= caps.guard_tripped(&budget);
    }
    let mut open = live;
    if open.is_empty() {
        return (results, tripped);
    }
    match caps.cap() {
        None => {
            let subset: Vec<&PreparedWorkload> =
                open.iter().map(|&index| prepared[index]).collect();
            let tests: Vec<BoxedTest> = vec![Box::new(AllApproximatedTest::new())];
            for (&index, mut analyses) in open
                .iter()
                .zip(batch::analyze_many_prepared(&subset, &tests))
            {
                results[index] = analyses.pop().expect("one test registered");
            }
        }
        Some(cap_units) => {
            let start = Instant::now();
            let mut budgets: Vec<WorkBudget> = vec![WorkBudget::limited(cap_units); prepared.len()];
            let mut bounded: Vec<Option<u64>> = vec![None; prepared.len()];
            let mut level = 2u64;
            loop {
                // Level-entry charge, mirroring `analyze_one`: a budget
                // that cannot cover entering the level sheds its system
                // here, before any batched work.
                let mut entered = Vec::with_capacity(open.len());
                for &index in &open {
                    if budgets[index].charge(1) {
                        entered.push(index);
                    } else {
                        results[index] = shed_analysis(&budgets[index], bounded[index]);
                        tripped |= caps.guard_tripped(&budgets[index]);
                    }
                }
                open = entered;
                if open.is_empty() {
                    break;
                }
                let subset: Vec<&PreparedWorkload> =
                    open.iter().map(|&index| prepared[index]).collect();
                let mut sub_budgets: Vec<WorkBudget> =
                    open.iter().map(|&index| budgets[index]).collect();
                let tests: Vec<BoxedTest> =
                    vec![Box::new(AllApproximatedTest::new().with_max_level(level))];
                let analyses =
                    batch::analyze_many_prepared_budgeted(&subset, &tests, &mut sub_budgets);
                let mut next_open = Vec::with_capacity(open.len());
                for ((&index, mut analyses), budget) in open.iter().zip(analyses).zip(sub_budgets) {
                    let mut analysis = analyses.pop().expect("one test registered");
                    let spent_before = budgets[index].spent();
                    budgets[index] = budget;
                    if analysis.verdict.is_decisive() {
                        results[index] = analysis;
                    } else if budget.is_exhausted() {
                        if let Some(progress) = analysis.progress.as_mut() {
                            progress.bounded_level = bounded[index];
                        }
                        tripped |= caps.guard_tripped(&budget);
                        results[index] = analysis;
                    } else {
                        bounded[index] = Some(level);
                        results[index] = analysis;
                        // Per-item stall exit, mirroring `analyze_one`: a
                        // level that charged nothing has no meterable work
                        // left, so the system closes with its honest
                        // Unknown instead of escalating forever.
                        if budget.spent() > spent_before {
                            next_open.push(index);
                        }
                    }
                }
                open = next_open;
                if open.is_empty() || level == u64::MAX {
                    break;
                }
                if let Some(guard) = guard {
                    // Shared wall-clock backstop for the wave, as in
                    // `analyze_one`: never binding on the deterministic
                    // path.
                    if start.elapsed() >= guard {
                        tripped = true;
                        break;
                    }
                }
                level = level.saturating_mul(2);
            }
        }
    }
    (results, tripped)
}

/// The honest `Unknown` a request answers when its budget refuses the
/// ladder's level-entry charge, carrying the exhausted budget's spend and
/// the deepest level fully answered before it.
fn shed_analysis(budget: &WorkBudget, bounded_level: Option<u64>) -> Analysis {
    let mut analysis = Analysis::trivial(Verdict::Unknown);
    analysis.progress = Some(Progress {
        units_spent: budget.spent(),
        phase: ProgressPhase::Bounds,
        certified_interval: None,
        bounded_level,
    });
    analysis
}

/// The checks that cost nothing even under a zero budget: the prepared
/// snapshot's exact `U > 1` comparison is a sound infeasibility proof.
fn free_verdict(prepared: &PreparedWorkload) -> Option<Analysis> {
    (prepared.utilization_is_exact() && prepared.utilization_exceeds_one())
        .then(|| Analysis::trivial(Verdict::Infeasible))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edf_model::Time;

    fn light(cost: u64, deadline: u64, period: u64) -> DemandComponent {
        DemandComponent::periodic(Time::new(cost), Time::new(deadline), Time::new(period))
    }

    #[test]
    fn admit_commits_feasible_and_rolls_back_infeasible() {
        let mut service = AdmissionService::new();
        let first = service.admit("a", light(4, 9, 10)).unwrap();
        assert!(matches!(first.decision, AdmissionDecision::Admitted(_)));
        let second = service.admit("a", light(9, 9, 10)).unwrap();
        assert_eq!(second.decision, AdmissionDecision::Rejected);
        let stat = service.stat("a").unwrap();
        assert_eq!(stat.components, 1);
        assert!(stat.utilization < 0.5);
    }

    #[test]
    fn what_if_never_mutates_committed_state() {
        let mut service = AdmissionService::new();
        service.admit("a", light(2, 8, 10)).unwrap();
        let before = service.stat("a").unwrap();
        let yes = service.what_if("a", light(1, 9, 10)).unwrap();
        assert_eq!(yes.decision, AdmissionDecision::Admitted(u64::MAX));
        let no = service.what_if("a", light(9, 9, 10)).unwrap();
        assert_eq!(no.decision, AdmissionDecision::Rejected);
        assert_eq!(service.stat("a").unwrap(), before);
        // A what-if against an unknown tenant does not register it.
        service.what_if("ghost", light(1, 5, 10)).unwrap();
        assert!(service.stat("ghost").is_none());
    }

    #[test]
    fn evict_removes_exactly_the_identified_component() {
        let mut service = AdmissionService::new();
        let AdmissionDecision::Admitted(first) =
            service.admit("a", light(1, 5, 10)).unwrap().decision
        else {
            panic!("expected admission")
        };
        let AdmissionDecision::Admitted(second) =
            service.admit("a", light(2, 7, 20)).unwrap().decision
        else {
            panic!("expected admission")
        };
        service.evict("a", first).unwrap();
        assert!(
            matches!(
                service.evict("a", first),
                Err(RequestError::UnknownComponent { .. })
            ),
            "ids are single-use"
        );
        assert!(matches!(
            service.evict("missing", second),
            Err(RequestError::UnknownTenant { .. })
        ));
        let stat = service.stat("a").unwrap();
        assert_eq!(stat.components, 1);
        service.evict("a", second).unwrap();
        assert_eq!(service.stat("a").unwrap().components, 0);
    }

    #[test]
    fn register_tenant_seeds_the_committed_system() {
        let mut service = AdmissionService::new();
        let base = PreparedWorkload::from_components(vec![light(2, 8, 10), light(1, 6, 20)]);
        let ids = service.register_tenant("seeded", &base).unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(service.stat("seeded").unwrap().components, 2);
        service.evict("seeded", ids[0]).unwrap();
        assert_eq!(service.stat("seeded").unwrap().components, 1);
    }

    #[test]
    fn zero_budget_answers_unknown_and_declines() {
        let mut service = AdmissionService::with_mode(SlaMode::Budgeted {
            deadline: Duration::ZERO,
        });
        let response = service.admit("a", light(4, 9, 10)).unwrap();
        assert_eq!(response.analysis.verdict, Verdict::Unknown);
        assert_eq!(response.decision, AdmissionDecision::Undetermined);
        assert_eq!(
            service.stat("a").unwrap().components,
            0,
            "an unknown verdict must never admit"
        );
    }

    #[test]
    fn zero_budget_still_proves_overload_infeasible() {
        let mut service = AdmissionService::with_mode(SlaMode::Budgeted {
            deadline: Duration::ZERO,
        });
        service
            .set_mode(SlaMode::Budgeted {
                deadline: Duration::ZERO,
            })
            .unwrap();
        // U = 6/10 + 6/10 > 1: the exact rational comparison fires with
        // zero analysis budget.
        assert!(matches!(
            service.admit("a", light(6, 8, 10)).unwrap().decision,
            AdmissionDecision::Undetermined
        ));
        // Force the overload into one request: a single component with
        // utilization above one.
        let response = service.admit("b", light(11, 12, 10)).unwrap();
        assert_eq!(response.analysis.verdict, Verdict::Infeasible);
        assert_eq!(response.decision, AdmissionDecision::Rejected);
    }

    #[test]
    fn generous_budget_matches_exact_mode() {
        let mut exact = AdmissionService::new();
        let mut budgeted = AdmissionService::with_mode(SlaMode::Budgeted {
            deadline: Duration::from_secs(5),
        });
        for component in [light(4, 9, 10), light(3, 14, 20), light(9, 9, 10)] {
            let exact_verdict = exact.admit("a", component).unwrap().analysis.verdict;
            let budget_verdict = budgeted.admit("a", component).unwrap().analysis.verdict;
            assert_eq!(exact_verdict, budget_verdict);
        }
        assert_eq!(exact.stat("a").unwrap().components, 2);
        assert_eq!(budgeted.stat("a").unwrap().components, 2);
    }

    #[test]
    fn unit_budgets_shed_deterministically_and_monotonically() {
        // A work-unit allowance is machine-independent: two services with
        // the same units answer bit-identically, and growing the
        // allowance never flips a decisive verdict.
        let components = [light(4, 9, 10), light(3, 14, 20), light(9, 9, 10)];
        let run = |units: u64| {
            let mut service = AdmissionService::with_mode(SlaMode::BudgetedUnits { units });
            components
                .iter()
                .map(|&component| service.admit("a", component).unwrap().analysis)
                .collect::<Vec<_>>()
        };
        let mut decisive: Vec<Option<Analysis>> = vec![None; components.len()];
        for units in [0, 1, 10, 100, 10_000, 1_000_000] {
            let twin = run(units);
            assert_eq!(run(units), twin, "units={units} must be reproducible");
            for (index, analysis) in twin.into_iter().enumerate() {
                if let Some(first) = &decisive[index] {
                    assert_eq!(
                        &analysis, first,
                        "request {index}: a decisive verdict at a smaller budget \
                         changed at units={units}"
                    );
                } else if analysis.verdict.is_decisive() {
                    decisive[index] = Some(analysis);
                }
            }
        }
        let exact = {
            let mut service = AdmissionService::new();
            components
                .iter()
                .map(|&component| service.admit("a", component).unwrap().analysis)
                .collect::<Vec<_>>()
        };
        for (index, analysis) in exact.into_iter().enumerate() {
            assert_eq!(
                Some(analysis),
                decisive[index],
                "request {index}: the generous budget must reach the exact answer"
            );
        }
    }

    #[test]
    fn budget_exhaustions_are_counted_and_reported() {
        let mut service = AdmissionService::with_mode(SlaMode::BudgetedUnits { units: 0 });
        assert_eq!(service.budget_exhaustions(), 0);
        let response = service.admit("a", light(4, 9, 10)).unwrap();
        assert_eq!(response.decision, AdmissionDecision::Undetermined);
        assert!(response.analysis.budget_exhausted());
        let progress = response
            .analysis
            .progress
            .expect("exhaustion carries progress");
        assert!(progress.units_spent >= 1);
        assert_eq!(service.budget_exhaustions(), 1);
        service.what_if("a", light(4, 9, 10)).unwrap();
        assert_eq!(service.budget_exhaustions(), 2);
        // A tight SLA budget never drives the watchdog hysteresis.
        assert_eq!(service.guard_trips(), 0);
        assert!(!service.is_degraded());
        service.set_mode(SlaMode::Exact).unwrap();
        service.admit("a", light(4, 9, 10)).unwrap();
        assert_eq!(
            service.budget_exhaustions(),
            2,
            "decisive answers do not count"
        );
    }

    #[test]
    fn injected_budget_exhaustion_sheds_through_the_checkpoints() {
        let mut service = AdmissionService::new();
        service
            .set_fault_plan(FaultPlan::from_seed(11, 0, 0, 0).with_budget_exhaust_per_mille(1000));
        for request in 0..4 {
            let response = service.admit("a", light(4, 9, 10)).unwrap();
            assert_eq!(
                response.decision,
                AdmissionDecision::Undetermined,
                "request {request}"
            );
            assert!(response.analysis.budget_exhausted(), "request {request}");
        }
        assert_eq!(service.budget_exhaustions(), 4);
        assert_eq!(service.stat("a").unwrap().components, 0);
        assert_eq!(
            service.guard_trips(),
            0,
            "a forced exhaustion is not a watchdog fire"
        );
    }

    #[test]
    fn batched_exhaustion_matches_sequential_exhaustion() {
        let requests: Vec<(&str, DemandComponent)> = vec![
            ("a", light(4, 9, 10)),
            ("b", light(2, 6, 8)),
            ("a", light(9, 9, 10)),
            ("c", light(1, 3, 4)),
            ("a", light(3, 18, 20)),
        ];
        for units in [0, 1, 25, 400, 100_000] {
            let mode = SlaMode::BudgetedUnits { units };
            let mut batched = AdmissionService::with_mode(mode);
            let batched_responses = batched.admit_many(&requests);
            let mut sequential = AdmissionService::with_mode(mode);
            for (index, &(tenant, component)) in requests.iter().enumerate() {
                let response = sequential.admit(tenant, component).unwrap();
                assert_eq!(
                    &response.analysis,
                    &batched_responses[index].as_ref().unwrap().analysis,
                    "units={units} request {index}: wave and sequential \
                     exhaustion must be bit-identical"
                );
            }
            assert_eq!(
                batched.budget_exhaustions(),
                sequential.budget_exhaustions()
            );
            for tenant in ["a", "b", "c"] {
                assert_eq!(batched.stat(tenant), sequential.stat(tenant));
            }
        }
    }

    #[test]
    fn admit_many_matches_sequential_admits() {
        let requests: Vec<(&str, DemandComponent)> = vec![
            ("a", light(4, 9, 10)),
            ("b", light(2, 6, 8)),
            ("a", light(9, 9, 10)),
            ("c", light(1, 3, 4)),
            ("a", light(3, 18, 20)),
        ];
        let mut batched = AdmissionService::new();
        let batched_responses = batched.admit_many(&requests);
        let mut sequential = AdmissionService::new();
        for (index, &(tenant, component)) in requests.iter().enumerate() {
            let response = sequential.admit(tenant, component).unwrap();
            assert_eq!(
                &response.analysis,
                &batched_responses[index].as_ref().unwrap().analysis,
                "request {index} diverges between batched and sequential"
            );
        }
        for tenant in ["a", "b", "c"] {
            assert_eq!(batched.stat(tenant), sequential.stat(tenant));
        }
    }

    #[test]
    fn what_if_many_is_read_only_and_ordered() {
        let mut service = AdmissionService::new();
        service.admit("a", light(4, 9, 10)).unwrap();
        let before = service.stat("a").unwrap();
        let responses = service.what_if_many(&[
            ("a", light(1, 9, 10)),
            ("a", light(9, 9, 10)),
            ("fresh", light(1, 4, 5)),
        ]);
        let decision = |index: usize| responses[index].as_ref().unwrap().decision;
        assert_eq!(decision(0), AdmissionDecision::Admitted(u64::MAX));
        assert_eq!(decision(1), AdmissionDecision::Rejected);
        assert_eq!(decision(2), AdmissionDecision::Admitted(u64::MAX));
        assert_eq!(service.stat("a").unwrap(), before);
        assert_eq!(
            service.stat("fresh").unwrap().components,
            0,
            "what-if registered the tenant but committed nothing"
        );
    }

    #[test]
    fn invalid_components_are_refused_before_analysis() {
        let mut service = AdmissionService::new();
        let zero_cost = DemandComponent::periodic(Time::new(0), Time::new(5), Time::new(10));
        let zero_deadline = DemandComponent::periodic(Time::new(1), Time::new(0), Time::new(10));
        let zero_period = DemandComponent::periodic(Time::new(1), Time::new(5), Time::new(0));
        for (component, fault) in [
            (zero_cost, ComponentFault::ZeroCost),
            (zero_deadline, ComponentFault::ZeroDeadline),
            (zero_period, ComponentFault::ZeroPeriod),
        ] {
            assert_eq!(
                service.admit("a", component),
                Err(RequestError::InvalidComponent { fault })
            );
            assert_eq!(
                service.what_if("a", component),
                Err(RequestError::InvalidComponent { fault })
            );
        }
        assert_eq!(service.tenant_count(), 0, "invalid admits create nothing");
    }

    #[test]
    fn resource_caps_are_enforced() {
        let mut service = AdmissionService::new();
        service.set_limits(ServiceLimits {
            max_tenants: 2,
            max_components_per_tenant: 1,
            max_tenant_name_bytes: 4,
        });
        service.admit("a", light(1, 9, 10)).unwrap();
        assert_eq!(
            service.admit("a", light(1, 9, 10)),
            Err(RequestError::ComponentLimit { limit: 1 })
        );
        service.admit("b", light(1, 9, 10)).unwrap();
        assert_eq!(
            service.admit("c", light(1, 9, 10)),
            Err(RequestError::TenantLimit { limit: 2 })
        );
        assert_eq!(
            service.admit("too-long-name", light(1, 9, 10)),
            Err(RequestError::TenantName { limit: 4 })
        );
    }

    #[test]
    fn injected_panic_is_isolated_and_state_survives() {
        let mut service = AdmissionService::new();
        service.admit("a", light(4, 9, 10)).unwrap();
        let before = service.stat("a").unwrap();
        // Rate 1000/1000: the next request's analysis panics.
        service.set_fault_plan(FaultPlan::from_seed(1, 1000, 0, 0));
        let error = service.admit("a", light(1, 9, 10)).unwrap_err();
        assert_eq!(error.code(), "analysis-panic");
        service.take_fault_plan();
        assert_eq!(service.panics_isolated(), 1);
        // The committed state survived the panic and the service still
        // answers correctly.
        assert_eq!(service.stat("a").unwrap(), before);
        let response = service.admit("a", light(1, 9, 10)).unwrap();
        assert!(matches!(response.decision, AdmissionDecision::Admitted(_)));
    }

    #[test]
    fn wave_panic_is_isolated_per_request() {
        let mut service = AdmissionService::new();
        service.set_fault_plan(FaultPlan::from_seed(5, 500, 0, 0));
        let requests: Vec<(&str, DemandComponent)> = vec![
            ("a", light(4, 9, 10)),
            ("b", light(2, 6, 8)),
            ("c", light(1, 3, 4)),
            ("d", light(1, 9, 10)),
        ];
        let responses = service.admit_many(&requests);
        assert_eq!(responses.len(), requests.len(), "one reply per request");
        let panicked = responses
            .iter()
            .filter(|response| matches!(response, Err(RequestError::AnalysisPanic { .. })))
            .count();
        let admitted = responses
            .iter()
            .filter(|response| {
                matches!(
                    response,
                    Ok(AdmissionResponse {
                        decision: AdmissionDecision::Admitted(_),
                        ..
                    })
                )
            })
            .count();
        assert_eq!(panicked + admitted, requests.len());
        assert!(panicked > 0, "seed 5 at rate 500/1000 injects panics");
        assert!(admitted > 0, "non-faulted requests still succeed");
        // Non-faulted tenants committed; faulted ones stayed empty.
        let report = service.take_fault_plan().unwrap();
        assert!(!report.report().injected.is_empty());
    }

    #[test]
    fn guard_fires_degrade_with_hysteresis_and_recover() {
        let mut service = AdmissionService::new();
        let watchdog = WatchdogConfig {
            guard: Duration::from_secs(5),
            trip_threshold: 3,
            recovery_threshold: 4,
            degraded_deadline: Duration::from_millis(50),
        };
        service.set_watchdog(Some(watchdog));
        // Rate 1000/1000 guard fires: every request trips.
        service.set_fault_plan(FaultPlan::from_seed(2, 0, 1000, 0));
        for trip in 0..3u32 {
            let response = service.admit("a", light(4, 9, 10)).unwrap();
            assert_eq!(response.analysis.verdict, Verdict::Unknown, "trip {trip}");
            assert_eq!(response.decision, AdmissionDecision::Undetermined);
        }
        assert!(service.is_degraded(), "3 consecutive trips shed load");
        assert_eq!(service.guard_trips(), 3);
        service.take_fault_plan();
        // Clean requests rebuild the healthy streak and restore the mode.
        for _ in 0..4 {
            service.admit("a", light(1, 50, 100)).unwrap();
        }
        assert!(!service.is_degraded(), "4 clean requests recover");
        assert_eq!(
            service.stat("a").unwrap().components,
            4,
            "degraded mode still admits decisively cheap systems"
        );
    }

    #[test]
    fn journal_round_trip_recovers_committed_state() {
        let dir =
            std::env::temp_dir().join(format!("edf-serve-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round-trip.journal");
        let _ = std::fs::remove_file(&path);

        let (stat_a, stat_b, evicted) = {
            let mut service = AdmissionService::recover(&path).unwrap();
            service.admit("a", light(4, 9, 10)).unwrap();
            service.admit("a", light(3, 18, 20)).unwrap();
            let AdmissionDecision::Admitted(id) =
                service.admit("b", light(2, 6, 8)).unwrap().decision
            else {
                panic!("expected admission");
            };
            service.admit("b", light(9, 9, 10)).unwrap_err_or_rejected();
            service.evict("b", id).unwrap();
            service
                .set_mode(SlaMode::Budgeted {
                    deadline: Duration::from_millis(10),
                })
                .unwrap();
            (service.stat("a").unwrap(), service.stat("b").unwrap(), id)
        };

        let mut recovered = AdmissionService::recover(&path).unwrap();
        assert_eq!(recovered.stat("a").unwrap(), stat_a);
        assert_eq!(recovered.stat("b").unwrap(), stat_b);
        assert_eq!(
            recovered.mode(),
            SlaMode::Budgeted {
                deadline: Duration::from_millis(10)
            }
        );
        // The id allocator never reuses a pre-crash id.
        let AdmissionDecision::Admitted(fresh) =
            recovered.admit("b", light(1, 6, 8)).unwrap().decision
        else {
            panic!("expected admission");
        };
        assert!(fresh > evicted, "recovered allocator is past all old ids");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_compaction_preserves_recovery() {
        let dir =
            std::env::temp_dir().join(format!("edf-serve-snapshot-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.journal");
        let _ = std::fs::remove_file(&path);

        let (stat, bytes_before, bytes_after) = {
            let mut service = AdmissionService::recover(&path).unwrap();
            // Churn: admissions and evictions bloat the log relative to
            // the final state.
            for round in 0..8u64 {
                let AdmissionDecision::Admitted(id) =
                    service.admit("a", light(1, 40, 100)).unwrap().decision
                else {
                    panic!("expected admission");
                };
                if round % 2 == 0 {
                    service.evict("a", id).unwrap();
                }
            }
            let bytes_before = std::fs::metadata(&path).unwrap().len();
            service.snapshot().unwrap();
            let bytes_after = std::fs::metadata(&path).unwrap().len();
            (service.stat("a").unwrap(), bytes_before, bytes_after)
        };
        assert!(
            bytes_after < bytes_before,
            "compaction shrinks a churned log ({bytes_after} vs {bytes_before})"
        );
        let mut recovered = AdmissionService::recover(&path).unwrap();
        assert_eq!(recovered.stat("a").unwrap(), stat);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sync_and_snapshot_require_a_journal() {
        let mut service = AdmissionService::new();
        assert_eq!(service.sync(), Err(RequestError::NoJournal));
        assert_eq!(service.snapshot(), Err(RequestError::NoJournal));
    }

    /// Test-only sugar: some admissions in journal tests may land either
    /// way depending on mode; this helper accepts any outcome.
    trait AnyOutcome {
        fn unwrap_err_or_rejected(self);
    }

    impl AnyOutcome for Result<AdmissionResponse, RequestError> {
        fn unwrap_err_or_rejected(self) {
            if let Ok(response) = self {
                assert_ne!(
                    response.decision,
                    AdmissionDecision::Undetermined,
                    "exact mode decides"
                );
            }
        }
    }
}
