//! # `edf-serve` — online EDF admission control over the view family
//!
//! A long-running service answering **admit / evict / what-if** requests
//! for thousands of independently prepared workloads ("tenants"), each
//! held behind one [`EditView`]: every request is a structural edit of the
//! tenant's [`PreparedWorkload`], re-analyzed in place through the delta
//! path (deadline-order repair, bounds refresh, in-place kernel rebuild)
//! instead of a cold re-preparation.
//!
//! The service commits an edit only when the paper's all-approximated
//! exact test accepts the edited system; a rejected or hypothetical edit
//! is rolled back through [`WorkloadView::revert`], so a tenant's
//! committed state is always a feasibility-checked snapshot.
//!
//! Two service-level objectives are offered ([`SlaMode`]):
//!
//! * **Exact** — every request runs the uncapped exact test; verdicts are
//!   always decisive.
//! * **Budgeted** — an anytime escalation over the capped-level test
//!   constructor ([`AllApproximatedTest::with_max_level`]): levels are
//!   doubled until a decisive verdict lands or the per-request deadline
//!   expires, at which point the service answers an **honest
//!   [`Verdict::Unknown`]** (and declines the admission) rather than a
//!   wrong verdict.  Decisive capped verdicts are exact, so budgeting
//!   never trades correctness — only decisiveness.
//!
//! Concurrent request batches go through [`AdmissionService::admit_many`]
//! / [`AdmissionService::what_if_many`], which fan independent tenants out
//! across the CPU cores via [`batch::analyze_many_prepared`] with one
//! [`AnalysisScratch`] arena per worker.
//!
//! The `edf-serve` binary (see `src/main.rs`) exposes the service over a
//! line protocol on stdin/stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::time::{Duration, Instant};

use edf_analysis::batch::{self, BoxedTest};
use edf_analysis::tests::AllApproximatedTest;
use edf_analysis::workload::DemandComponent;
use edf_analysis::{
    Analysis, AnalysisScratch, EditView, FeasibilityTest, PreparedWorkload, Verdict, WorkloadView,
};

/// Service-level objective for analysis latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlaMode {
    /// Run the uncapped exact test on every request.  Verdicts are always
    /// decisive; latency is whatever exactness costs.
    Exact,
    /// Anytime mode: escalate capped-level tests (levels 2, 4, 8, …)
    /// until a decisive verdict or the deadline, then answer an honest
    /// [`Verdict::Unknown`].  A decisive answer under a cap is exact, so
    /// this mode can return a *missing* verdict but never a *wrong* one.
    Budgeted {
        /// Per-request analysis deadline.  [`Duration::ZERO`] permits only
        /// the free checks (the exact `U > 1` comparison).
        deadline: Duration,
    },
}

/// The service's decision on an [`AdmissionService::admit`] request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The edited system is feasible; the component was committed under
    /// this service-assigned id (stable across later edits, usable with
    /// [`AdmissionService::evict`]).
    Admitted(u64),
    /// The edited system provably misses a deadline; the edit was rolled
    /// back.
    Rejected,
    /// The budget expired before a decisive verdict; the edit was rolled
    /// back (never admitted on an unknown).
    Undetermined,
}

/// Outcome of an admit or what-if request: the decision plus the analysis
/// that produced it (iteration counts make the §5 effort metric visible
/// per request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionResponse {
    /// What the service decided (and, for admissions, the component id).
    pub decision: AdmissionDecision,
    /// The deciding analysis.
    pub analysis: Analysis,
}

/// A point-in-time summary of one tenant's committed system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantStat {
    /// Number of committed demand components.
    pub components: usize,
    /// Total utilization of the committed system.
    pub utilization: f64,
}

/// One tenant: the edit view over its committed system plus the stable
/// component ids, parallel to the view's component indices.
#[derive(Debug)]
struct Tenant {
    view: EditView,
    ids: Vec<u64>,
}

impl Tenant {
    fn empty() -> Self {
        Tenant {
            view: EditView::new(&PreparedWorkload::from_components(Vec::new())),
            ids: Vec::new(),
        }
    }
}

/// The admission-control service: a map of tenants, the active
/// [`SlaMode`], and one reusable [`AnalysisScratch`] for the
/// single-request path.
///
/// # Examples
///
/// ```
/// use edf_analysis::workload::DemandComponent;
/// use edf_model::Time;
/// use edf_serve::{AdmissionDecision, AdmissionService};
///
/// let mut service = AdmissionService::new();
/// let heavy = DemandComponent::periodic(Time::new(6), Time::new(8), Time::new(10));
/// let id = match service.admit("tenant-a", heavy).decision {
///     AdmissionDecision::Admitted(id) => id,
///     other => panic!("feasible component declined: {other:?}"),
/// };
///
/// // A second heavy component would push utilization past one: rejected,
/// // and the tenant's committed state is untouched.
/// let response = service.admit("tenant-a", heavy);
/// assert_eq!(response.decision, AdmissionDecision::Rejected);
/// assert_eq!(service.stat("tenant-a").unwrap().components, 1);
///
/// assert!(service.evict("tenant-a", id));
/// assert_eq!(service.stat("tenant-a").unwrap().components, 0);
/// ```
#[derive(Debug)]
pub struct AdmissionService {
    tenants: HashMap<String, Tenant>,
    mode: SlaMode,
    scratch: AnalysisScratch,
    next_id: u64,
}

impl Default for AdmissionService {
    fn default() -> Self {
        Self::new()
    }
}

impl AdmissionService {
    /// A fresh service in [`SlaMode::Exact`] with no tenants.
    #[must_use]
    pub fn new() -> Self {
        Self::with_mode(SlaMode::Exact)
    }

    /// A fresh service in the given mode.
    #[must_use]
    pub fn with_mode(mode: SlaMode) -> Self {
        AdmissionService {
            tenants: HashMap::new(),
            mode,
            scratch: AnalysisScratch::new(),
            next_id: 0,
        }
    }

    /// The active service-level objective.
    #[must_use]
    pub fn mode(&self) -> SlaMode {
        self.mode
    }

    /// Switches the service-level objective for subsequent requests.
    pub fn set_mode(&mut self, mode: SlaMode) {
        self.mode = mode;
    }

    /// Number of known tenants (admitting to a new name creates it).
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Registers `tenant` with `base` as its initial committed system
    /// (unchecked: the base is the operator's prior, not an admission).
    /// Replaces any existing tenant of that name; returns the component
    /// ids assigned to the base components, in component order.
    pub fn register_tenant(&mut self, tenant: &str, base: &PreparedWorkload) -> Vec<u64> {
        let ids: Vec<u64> = base
            .components()
            .iter()
            .map(|_| {
                let id = self.next_id;
                self.next_id += 1;
                id
            })
            .collect();
        self.tenants.insert(
            tenant.to_owned(),
            Tenant {
                view: EditView::new(base),
                ids: ids.clone(),
            },
        );
        ids
    }

    /// Admits `component` into `tenant`'s system if the edited system
    /// passes the active mode's analysis; otherwise rolls the edit back.
    /// Unknown tenants start from an empty system.
    pub fn admit(&mut self, tenant: &str, component: DemandComponent) -> AdmissionResponse {
        let mode = self.mode;
        let entry = self
            .tenants
            .entry(tenant.to_owned())
            .or_insert_with(Tenant::empty);
        entry.view.insert_component(component);
        let analysis = analyze_one(mode, entry.view.prepared(), &mut self.scratch);
        let decision = if analysis.verdict.is_feasible() {
            entry.view.commit();
            let id = self.next_id;
            self.next_id += 1;
            entry.ids.push(id);
            AdmissionDecision::Admitted(id)
        } else {
            // The rollback leaves the view dirty on purpose: the refresh
            // is paid lazily by whoever next needs the finalized state
            // (usually the next request's own finalize), keeping the
            // steady-state cost at one refresh per request.
            entry.view.revert();
            decline(analysis.verdict)
        };
        AdmissionResponse { decision, analysis }
    }

    /// Answers "would this component be admitted?" without changing the
    /// tenant's committed state: the edit is applied, analyzed, and
    /// reverted.  Unknown tenants are evaluated against an empty system
    /// (and stay unregistered).
    pub fn what_if(&mut self, tenant: &str, component: DemandComponent) -> AdmissionResponse {
        let mode = self.mode;
        match self.tenants.get_mut(tenant) {
            Some(entry) => {
                entry.view.insert_component(component);
                let analysis = analyze_one(mode, entry.view.prepared(), &mut self.scratch);
                // Lazy rollback, as in `admit`: the next finalize pays one
                // refresh for the revert and its own edit together.
                entry.view.revert();
                AdmissionResponse {
                    decision: hypothetical(&analysis),
                    analysis,
                }
            }
            None => {
                let mut probe = Tenant::empty();
                probe.view.insert_component(component);
                let analysis = analyze_one(mode, probe.view.prepared(), &mut self.scratch);
                AdmissionResponse {
                    decision: hypothetical(&analysis),
                    analysis,
                }
            }
        }
    }

    /// Removes the component with the given service-assigned id from
    /// `tenant` and commits the shrunk system (removal only reduces
    /// demand, so no re-admission test is needed).  Returns `false` when
    /// the tenant or id is unknown.
    pub fn evict(&mut self, tenant: &str, id: u64) -> bool {
        let Some(entry) = self.tenants.get_mut(tenant) else {
            return false;
        };
        let Some(index) = entry.ids.iter().position(|&existing| existing == id) else {
            return false;
        };
        entry.ids.remove(index);
        entry.view.remove_component(index);
        entry.view.commit();
        true
    }

    /// A summary of `tenant`'s committed system, or `None` if unknown.
    /// Finalizes any pending lazy rollback first (hence `&mut self`).
    pub fn stat(&mut self, tenant: &str) -> Option<TenantStat> {
        let entry = self.tenants.get_mut(tenant)?;
        let prepared = entry.view.prepared();
        Some(TenantStat {
            components: prepared.components().len(),
            utilization: prepared.utilization(),
        })
    }

    /// Batched [`AdmissionService::admit`]: requests for *distinct*
    /// tenants are analyzed concurrently via
    /// [`batch::analyze_many_prepared`] (one scratch arena per worker);
    /// requests hitting the same tenant are serialized into successive
    /// waves, each wave seeing the commits of the previous one.  Responses
    /// are in request order.
    pub fn admit_many(&mut self, requests: &[(&str, DemandComponent)]) -> Vec<AdmissionResponse> {
        self.run_waves(requests, true)
    }

    /// Batched [`AdmissionService::what_if`]: same wave scheduling as
    /// [`AdmissionService::admit_many`], but every edit is reverted, so no
    /// committed state changes (unknown tenants are registered empty, to
    /// keep the wave engine uniform).  Responses are in request order.
    pub fn what_if_many(&mut self, requests: &[(&str, DemandComponent)]) -> Vec<AdmissionResponse> {
        self.run_waves(requests, false)
    }

    /// Shared wave engine behind the batched entry points.  Per wave:
    /// apply one edit per distinct tenant and finalize (phase 1), analyze
    /// all finalized views in parallel (phase 2), then commit or revert by
    /// verdict (phase 3).
    fn run_waves(
        &mut self,
        requests: &[(&str, DemandComponent)],
        commit_admissions: bool,
    ) -> Vec<AdmissionResponse> {
        let mode = self.mode;
        let mut responses: Vec<Option<AdmissionResponse>> = vec![None; requests.len()];
        let mut remaining: Vec<usize> = (0..requests.len()).collect();
        while !remaining.is_empty() {
            // Phase 0: pick at most one pending request per tenant.
            let mut wave: Vec<usize> = Vec::with_capacity(remaining.len());
            let mut deferred: Vec<usize> = Vec::new();
            for request in remaining.drain(..) {
                let tenant = requests[request].0;
                if wave
                    .iter()
                    .any(|&scheduled| requests[scheduled].0 == tenant)
                {
                    deferred.push(request);
                } else {
                    wave.push(request);
                }
            }
            remaining = deferred;

            // Phase 1: apply each wave edit and finalize its view.
            for &request in &wave {
                let (tenant, component) = requests[request];
                let entry = self
                    .tenants
                    .entry(tenant.to_owned())
                    .or_insert_with(Tenant::empty);
                entry.view.insert_component(component);
                entry.view.prepared();
            }

            // Phase 2: analyze the finalized views of the wave in
            // parallel.  The views are clean, so the shared-borrow
            // accessor hands out plain `&PreparedWorkload`s.
            let analyses = {
                let prepared: Vec<&PreparedWorkload> = wave
                    .iter()
                    .map(|&request| self.tenants[requests[request].0].view.finalized())
                    .collect();
                analyze_wave(mode, &prepared)
            };

            // Phase 3: commit admissions, revert everything else.
            for (&request, analysis) in wave.iter().zip(analyses) {
                let tenant = requests[request].0;
                let entry = self.tenants.get_mut(tenant).expect("tenant seen in wave");
                let decision = if commit_admissions && analysis.verdict.is_feasible() {
                    entry.view.commit();
                    let id = self.next_id;
                    self.next_id += 1;
                    entry.ids.push(id);
                    AdmissionDecision::Admitted(id)
                } else {
                    entry.view.revert();
                    if commit_admissions {
                        decline(analysis.verdict)
                    } else {
                        hypothetical(&analysis)
                    }
                };
                responses[request] = Some(AdmissionResponse { decision, analysis });
            }
        }
        responses
            .into_iter()
            .map(|response| response.expect("every request answered"))
            .collect()
    }
}

/// Maps a non-feasible verdict to the matching declined decision.
fn decline(verdict: Verdict) -> AdmissionDecision {
    if verdict.is_infeasible() {
        AdmissionDecision::Rejected
    } else {
        AdmissionDecision::Undetermined
    }
}

/// Maps a what-if analysis to the decision an admit *would* have made.
fn hypothetical(analysis: &Analysis) -> AdmissionDecision {
    match analysis.verdict {
        // The id an admission would assign is not reserved by a what-if;
        // `u64::MAX` marks the hypothetical.
        Verdict::Feasible => AdmissionDecision::Admitted(u64::MAX),
        Verdict::Infeasible => AdmissionDecision::Rejected,
        Verdict::Unknown => AdmissionDecision::Undetermined,
    }
}

/// Analyzes one prepared system under the given mode.
fn analyze_one(
    mode: SlaMode,
    prepared: &PreparedWorkload,
    scratch: &mut AnalysisScratch,
) -> Analysis {
    match mode {
        SlaMode::Exact => AllApproximatedTest::new().analyze_prepared_with(prepared, scratch),
        SlaMode::Budgeted { deadline } => {
            let start = Instant::now();
            if let Some(free) = free_verdict(prepared) {
                return free;
            }
            let mut last = Analysis::trivial(Verdict::Unknown);
            let mut level = 2u64;
            while start.elapsed() < deadline {
                let test = AllApproximatedTest::new().with_max_level(level);
                let analysis = test.analyze_prepared_with(prepared, scratch);
                if analysis.verdict.is_decisive() {
                    return analysis;
                }
                last = analysis;
                level = level.saturating_mul(2);
            }
            last
        }
    }
}

/// Analyzes a wave of prepared systems under the given mode, fanning out
/// across the CPU cores.  In budgeted mode the whole wave shares one
/// deadline: each escalation level runs only the still-undecided systems,
/// and systems left undecided at the deadline answer
/// [`Verdict::Unknown`].
fn analyze_wave(mode: SlaMode, prepared: &[&PreparedWorkload]) -> Vec<Analysis> {
    match mode {
        SlaMode::Exact => {
            let tests: Vec<BoxedTest> = vec![Box::new(AllApproximatedTest::new())];
            batch::analyze_many_prepared(prepared, &tests)
                .into_iter()
                .map(|mut analyses| analyses.pop().expect("one test registered"))
                .collect()
        }
        SlaMode::Budgeted { deadline } => {
            let start = Instant::now();
            let mut results: Vec<Analysis> = prepared
                .iter()
                .map(|system| {
                    free_verdict(system).unwrap_or_else(|| Analysis::trivial(Verdict::Unknown))
                })
                .collect();
            let mut level = 2u64;
            while start.elapsed() < deadline {
                let undecided: Vec<usize> = results
                    .iter()
                    .enumerate()
                    .filter(|(_, analysis)| !analysis.verdict.is_decisive())
                    .map(|(index, _)| index)
                    .collect();
                if undecided.is_empty() {
                    break;
                }
                let subset: Vec<&PreparedWorkload> =
                    undecided.iter().map(|&index| prepared[index]).collect();
                let tests: Vec<BoxedTest> =
                    vec![Box::new(AllApproximatedTest::new().with_max_level(level))];
                for (&index, mut analyses) in undecided
                    .iter()
                    .zip(batch::analyze_many_prepared(&subset, &tests))
                {
                    results[index] = analyses.pop().expect("one test registered");
                }
                level = level.saturating_mul(2);
            }
            results
        }
    }
}

/// The checks that cost nothing even under a zero budget: the prepared
/// snapshot's exact `U > 1` comparison is a sound infeasibility proof.
fn free_verdict(prepared: &PreparedWorkload) -> Option<Analysis> {
    (prepared.utilization_is_exact() && prepared.utilization_exceeds_one())
        .then(|| Analysis::trivial(Verdict::Infeasible))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edf_model::Time;

    fn light(cost: u64, deadline: u64, period: u64) -> DemandComponent {
        DemandComponent::periodic(Time::new(cost), Time::new(deadline), Time::new(period))
    }

    #[test]
    fn admit_commits_feasible_and_rolls_back_infeasible() {
        let mut service = AdmissionService::new();
        let first = service.admit("a", light(4, 9, 10));
        assert!(matches!(first.decision, AdmissionDecision::Admitted(_)));
        let second = service.admit("a", light(9, 9, 10));
        assert_eq!(second.decision, AdmissionDecision::Rejected);
        let stat = service.stat("a").unwrap();
        assert_eq!(stat.components, 1);
        assert!(stat.utilization < 0.5);
    }

    #[test]
    fn what_if_never_mutates_committed_state() {
        let mut service = AdmissionService::new();
        service.admit("a", light(2, 8, 10));
        let before = service.stat("a").unwrap();
        let yes = service.what_if("a", light(1, 9, 10));
        assert_eq!(yes.decision, AdmissionDecision::Admitted(u64::MAX));
        let no = service.what_if("a", light(9, 9, 10));
        assert_eq!(no.decision, AdmissionDecision::Rejected);
        assert_eq!(service.stat("a").unwrap(), before);
        // A what-if against an unknown tenant does not register it.
        service.what_if("ghost", light(1, 5, 10));
        assert!(service.stat("ghost").is_none());
    }

    #[test]
    fn evict_removes_exactly_the_identified_component() {
        let mut service = AdmissionService::new();
        let AdmissionDecision::Admitted(first) = service.admit("a", light(1, 5, 10)).decision
        else {
            panic!("expected admission")
        };
        let AdmissionDecision::Admitted(second) = service.admit("a", light(2, 7, 20)).decision
        else {
            panic!("expected admission")
        };
        assert!(service.evict("a", first));
        assert!(!service.evict("a", first), "ids are single-use");
        assert!(!service.evict("missing", second));
        let stat = service.stat("a").unwrap();
        assert_eq!(stat.components, 1);
        assert!(service.evict("a", second));
        assert_eq!(service.stat("a").unwrap().components, 0);
    }

    #[test]
    fn register_tenant_seeds_the_committed_system() {
        let mut service = AdmissionService::new();
        let base = PreparedWorkload::from_components(vec![light(2, 8, 10), light(1, 6, 20)]);
        let ids = service.register_tenant("seeded", &base);
        assert_eq!(ids.len(), 2);
        assert_eq!(service.stat("seeded").unwrap().components, 2);
        assert!(service.evict("seeded", ids[0]));
        assert_eq!(service.stat("seeded").unwrap().components, 1);
    }

    #[test]
    fn zero_budget_answers_unknown_and_declines() {
        let mut service = AdmissionService::with_mode(SlaMode::Budgeted {
            deadline: Duration::ZERO,
        });
        let response = service.admit("a", light(4, 9, 10));
        assert_eq!(response.analysis.verdict, Verdict::Unknown);
        assert_eq!(response.decision, AdmissionDecision::Undetermined);
        assert_eq!(
            service.stat("a").unwrap().components,
            0,
            "an unknown verdict must never admit"
        );
    }

    #[test]
    fn zero_budget_still_proves_overload_infeasible() {
        let mut service = AdmissionService::with_mode(SlaMode::Budgeted {
            deadline: Duration::ZERO,
        });
        service.set_mode(SlaMode::Budgeted {
            deadline: Duration::ZERO,
        });
        // U = 6/10 + 6/10 > 1: the exact rational comparison fires with
        // zero analysis budget.
        assert!(matches!(
            service.admit("a", light(6, 8, 10)).decision,
            AdmissionDecision::Undetermined
        ));
        // Force the overload into one request: a single component with
        // utilization above one.
        let response = service.admit("b", light(11, 12, 10));
        assert_eq!(response.analysis.verdict, Verdict::Infeasible);
        assert_eq!(response.decision, AdmissionDecision::Rejected);
    }

    #[test]
    fn generous_budget_matches_exact_mode() {
        let mut exact = AdmissionService::new();
        let mut budgeted = AdmissionService::with_mode(SlaMode::Budgeted {
            deadline: Duration::from_secs(5),
        });
        for component in [light(4, 9, 10), light(3, 14, 20), light(9, 9, 10)] {
            let exact_verdict = exact.admit("a", component).analysis.verdict;
            let budget_verdict = budgeted.admit("a", component).analysis.verdict;
            assert_eq!(exact_verdict, budget_verdict);
        }
        assert_eq!(exact.stat("a").unwrap().components, 2);
        assert_eq!(budgeted.stat("a").unwrap().components, 2);
    }

    #[test]
    fn admit_many_matches_sequential_admits() {
        let requests: Vec<(&str, DemandComponent)> = vec![
            ("a", light(4, 9, 10)),
            ("b", light(2, 6, 8)),
            ("a", light(9, 9, 10)),
            ("c", light(1, 3, 4)),
            ("a", light(3, 18, 20)),
        ];
        let mut batched = AdmissionService::new();
        let batched_responses = batched.admit_many(&requests);
        let mut sequential = AdmissionService::new();
        for (index, &(tenant, component)) in requests.iter().enumerate() {
            let response = sequential.admit(tenant, component);
            assert_eq!(
                response.analysis, batched_responses[index].analysis,
                "request {index} diverges between batched and sequential"
            );
        }
        for tenant in ["a", "b", "c"] {
            assert_eq!(batched.stat(tenant), sequential.stat(tenant));
        }
    }

    #[test]
    fn what_if_many_is_read_only_and_ordered() {
        let mut service = AdmissionService::new();
        service.admit("a", light(4, 9, 10));
        let before = service.stat("a").unwrap();
        let responses = service.what_if_many(&[
            ("a", light(1, 9, 10)),
            ("a", light(9, 9, 10)),
            ("fresh", light(1, 4, 5)),
        ]);
        assert_eq!(responses[0].decision, AdmissionDecision::Admitted(u64::MAX));
        assert_eq!(responses[1].decision, AdmissionDecision::Rejected);
        assert_eq!(responses[2].decision, AdmissionDecision::Admitted(u64::MAX));
        assert_eq!(service.stat("a").unwrap(), before);
        assert_eq!(
            service.stat("fresh").unwrap().components,
            0,
            "what-if registered the tenant but committed nothing"
        );
    }
}
