//! Durable tenant journal: append-only, checksummed records of every
//! committed state mutation, with torn-tail-tolerant recovery and
//! snapshot compaction.
//!
//! # Format
//!
//! The journal is a binary file: an 8-byte magic header
//! (`EDFJRNL1`) followed by length-prefixed, checksummed frames:
//!
//! ```text
//! | payload len: u32 LE | FNV-1a 64 of payload: u64 LE | payload |
//! ```
//!
//! Each payload encodes one [`JournalRecord`].  The reader
//! ([`Journal::open`]) accepts the longest valid prefix: the first frame
//! with a short header, short payload, oversized length, checksum
//! mismatch or undecodable payload ends the replay, and the file is
//! truncated back to the end of the last valid frame so subsequent
//! appends continue from a clean tail.  A torn write at a crash therefore
//! loses at most the suffix from the torn record on — never the committed
//! prefix (see the fault-injection tests, which forge short writes and
//! bit flips deliberately).
//!
//! # Durability contract
//!
//! * [`Journal::append`] hands the frame to the OS (`write_all`) before
//!   returning: a committed mutation survives **process death** (e.g.
//!   `kill -9`) unconditionally, because the bytes live in the kernel
//!   page cache, not in user-space buffers.
//! * Surviving **machine death** (power loss) additionally requires
//!   [`Journal::sync`] (`fsync`), exposed to clients as the `SYNC`
//!   protocol command; [`Journal::compact`] also syncs before renaming
//!   the compacted file into place.
//!
//! # Replay semantics
//!
//! Records replay in append order into [`JournalState`]: `Tenant` creates
//! an (initially empty) tenant, `Admit` appends a committed component
//! under its service-assigned id, `Evict` removes one by id, `Mode`
//! switches the service-level objective and `NextId` raises the id
//! allocator floor (written by snapshots so recovered services never
//! reuse ids).  The rebuilt state is **bit-identical** to the pre-crash
//! committed state — components replay in their original insertion order,
//! so every derived aggregate (utilization sums, bounds, deadline order)
//! is reproduced exactly; the `recovery_equivalence` proptest pins this
//! against the live service.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use edf_analysis::workload::DemandComponent;
use edf_model::Time;

use crate::SlaMode;

/// File magic: journal format version 1.
const MAGIC: &[u8; 8] = b"EDFJRNL1";

/// Upper bound on one frame's payload, so a bit-flipped length field can
/// never make the reader allocate or skip gigabytes: anything larger is
/// treated as corruption.
const MAX_PAYLOAD_BYTES: u32 = 1 << 20;

/// One durable state mutation (or snapshot element).  See the [module
/// documentation](self) for replay semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A tenant now exists (even if it never commits a component).
    Tenant {
        /// Tenant name.
        tenant: String,
    },
    /// A component was admitted and committed under `id`.
    Admit {
        /// Owning tenant.
        tenant: String,
        /// Service-assigned stable component id.
        id: u64,
        /// The committed component.
        component: DemandComponent,
    },
    /// The component with `id` was evicted.
    Evict {
        /// Owning tenant.
        tenant: String,
        /// Service-assigned id of the removed component.
        id: u64,
    },
    /// The service-level objective changed.
    Mode(SlaMode),
    /// Floor for the id allocator (snapshots write this so recovered
    /// services never reuse an id that was live pre-compaction).
    NextId(u64),
}

/// The state a journal replays into: per-tenant committed components
/// (with their stable ids, in insertion order), the last recorded mode
/// and the id allocator floor.
#[derive(Debug, Clone, Default)]
pub struct JournalState {
    /// `(tenant, committed (id, component) list)` in tenant creation
    /// order.
    pub tenants: Vec<(String, Vec<(u64, DemandComponent)>)>,
    /// The last recorded [`SlaMode`], if any.
    pub mode: Option<SlaMode>,
    /// Smallest id the allocator may hand out next.
    pub next_id: u64,
}

impl JournalState {
    /// Replays `record` into the state (see the [module docs](self)).
    pub fn apply(&mut self, record: &JournalRecord) {
        match record {
            JournalRecord::Tenant { tenant } => {
                self.tenant_entry(tenant);
            }
            JournalRecord::Admit {
                tenant,
                id,
                component,
            } => {
                self.next_id = self.next_id.max(id + 1);
                self.tenant_entry(tenant).push((*id, *component));
            }
            JournalRecord::Evict { tenant, id } => {
                let committed = self.tenant_entry(tenant);
                if let Some(index) = committed.iter().position(|(existing, _)| existing == id) {
                    committed.remove(index);
                }
            }
            JournalRecord::Mode(mode) => self.mode = Some(*mode),
            JournalRecord::NextId(id) => self.next_id = self.next_id.max(*id),
        }
    }

    fn tenant_entry(&mut self, tenant: &str) -> &mut Vec<(u64, DemandComponent)> {
        if let Some(index) = self.tenants.iter().position(|(name, _)| name == tenant) {
            return &mut self.tenants[index].1;
        }
        self.tenants.push((tenant.to_owned(), Vec::new()));
        &mut self.tenants.last_mut().expect("just pushed").1
    }
}

/// A deliberate corruption of one append, used by the deterministic
/// fault-injection harness to prove torn-tail tolerance (see
/// [`Journal::append_faulty`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Only the first `keep` bytes of the frame reach the file — a torn
    /// write at a crash (`keep = 0` models a record lost entirely, which
    /// is indistinguishable from crashing just before the append).
    ShortWrite {
        /// Number of frame bytes actually written.
        keep: usize,
    },
    /// One bit of the frame is flipped — media corruption the checksum
    /// must catch.
    BitFlip {
        /// Bit index into the frame (taken modulo the frame length).
        bit: u64,
    },
}

/// The append-only journal file (see the [module documentation](self)
/// for format, durability and replay semantics).
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Bytes of valid journal prefix (header + intact frames).
    len: u64,
    /// Frames appended (valid records written by this handle or replayed
    /// at open).
    records: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, replays its valid prefix
    /// and truncates any torn/corrupt tail.  Returns the journal handle
    /// positioned for appends plus the replayed records in append order.
    ///
    /// # Errors
    ///
    /// Fails only on real I/O errors (open/read/truncate); corruption is
    /// not an error — it bounds the replayed prefix.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Journal, Vec<JournalRecord>)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let (records, valid_len) = if bytes.is_empty() {
            file.write_all(MAGIC)?;
            (Vec::new(), MAGIC.len() as u64)
        } else if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            // A torn or foreign header: nothing is trustworthy, start
            // over (the old bytes are dropped by the truncate below).
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            (Vec::new(), MAGIC.len() as u64)
        } else {
            let (records, consumed) = decode_frames(&bytes[MAGIC.len()..]);
            (records, (MAGIC.len() + consumed) as u64)
        };

        if valid_len < bytes.len() as u64 {
            file.set_len(valid_len)?;
        }
        file.seek(SeekFrom::Start(valid_len))?;
        let record_count = records.len() as u64;
        Ok((
            Journal {
                file,
                path,
                len: valid_len,
                records: record_count,
            },
            records,
        ))
    }

    /// Appends one record frame.  The bytes are handed to the OS before
    /// returning (durable across process death); call [`Journal::sync`]
    /// for machine-death durability.
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying write; on error the in-memory
    /// accounting is left unchanged (the caller should treat the append
    /// as not having happened and roll back its own state).
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let frame = encode_frame(record);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Appends one record with `fault` injected into the frame bytes —
    /// the fault-injection harness's model of a torn write
    /// ([`WriteFault::ShortWrite`]) or media corruption
    /// ([`WriteFault::BitFlip`]).  The journal's own accounting still
    /// counts the frame as written, exactly like a real torn write the
    /// process never observed.
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying write.
    pub fn append_faulty(&mut self, record: &JournalRecord, fault: WriteFault) -> io::Result<()> {
        let mut frame = encode_frame(record);
        match fault {
            WriteFault::ShortWrite { keep } => frame.truncate(keep.min(frame.len())),
            WriteFault::BitFlip { bit } => {
                let len_bits = frame.len() as u64 * 8;
                let bit = bit % len_bits.max(1);
                frame[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
        }
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// `fsync`s the journal file: everything appended so far survives
    /// machine death.
    ///
    /// # Errors
    ///
    /// Any I/O error from `fsync`.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Snapshot compaction: atomically replaces the journal with exactly
    /// `records` (the minimal sequence reproducing the current committed
    /// state).  The new file is written beside the journal, `fsync`ed and
    /// renamed into place, so a crash during compaction leaves either the
    /// old journal or the complete new one — never a mix.
    ///
    /// # Errors
    ///
    /// Any I/O error from writing, syncing or renaming the new file.
    pub fn compact(&mut self, records: &[JournalRecord]) -> io::Result<()> {
        let tmp_path = self.path.with_extension("compact-tmp");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(MAGIC)?;
        let mut len = MAGIC.len() as u64;
        for record in records {
            let frame = encode_frame(record);
            tmp.write_all(&frame)?;
            len += frame.len() as u64;
        }
        tmp.sync_data()?;
        std::fs::rename(&tmp_path, &self.path)?;
        // Reopen so the handle points at the compacted file, not the
        // unlinked old inode.
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.len = len;
        self.records = records.len() as u64;
        Ok(())
    }

    /// Path of the journal file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of valid journal (header + frames written so far).
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Frames appended to (or replayed from) this journal.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.records
    }
}

/// Decodes frames from `bytes`, stopping at the first torn or corrupt
/// one; returns the records and the number of bytes consumed by valid
/// frames.
fn decode_frames(bytes: &[u8]) -> (Vec<JournalRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while let Some(header) = bytes.get(offset..offset + 12) {
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        if len as u32 > MAX_PAYLOAD_BYTES {
            break;
        }
        let checksum = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let Some(payload) = bytes.get(offset + 12..offset + 12 + len) else {
            break;
        };
        if fnv1a(payload) != checksum {
            break;
        }
        let Some(record) = decode_record(payload) else {
            break;
        };
        records.push(record);
        offset += 12 + len;
    }
    (records, offset)
}

/// Encodes one record as a full frame (header + payload).
fn encode_frame(record: &JournalRecord) -> Vec<u8> {
    let payload = encode_record(record);
    debug_assert!(payload.len() as u32 <= MAX_PAYLOAD_BYTES);
    let mut frame = Vec::with_capacity(12 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// FNV-1a 64-bit over `bytes` — cheap, dependency-free corruption check
/// (not cryptographic; the journal defends against crashes and bit rot,
/// not adversaries).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Record tags (payload byte 0).
const TAG_TENANT: u8 = 1;
const TAG_ADMIT: u8 = 2;
const TAG_EVICT: u8 = 3;
const TAG_MODE: u8 = 4;
const TAG_NEXT_ID: u8 = 5;

fn encode_record(record: &JournalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match record {
        JournalRecord::Tenant { tenant } => {
            out.push(TAG_TENANT);
            put_name(&mut out, tenant);
        }
        JournalRecord::Admit {
            tenant,
            id,
            component,
        } => {
            out.push(TAG_ADMIT);
            put_name(&mut out, tenant);
            out.extend_from_slice(&id.to_le_bytes());
            put_component(&mut out, component);
        }
        JournalRecord::Evict { tenant, id } => {
            out.push(TAG_EVICT);
            put_name(&mut out, tenant);
            out.extend_from_slice(&id.to_le_bytes());
        }
        JournalRecord::Mode(mode) => {
            out.push(TAG_MODE);
            match mode {
                SlaMode::Exact => {
                    out.push(0);
                    out.extend_from_slice(&0u64.to_le_bytes());
                }
                SlaMode::Budgeted { deadline } => {
                    out.push(1);
                    let nanos = u64::try_from(deadline.as_nanos()).unwrap_or(u64::MAX);
                    out.extend_from_slice(&nanos.to_le_bytes());
                }
                SlaMode::BudgetedUnits { units } => {
                    out.push(2);
                    out.extend_from_slice(&units.to_le_bytes());
                }
            }
        }
        JournalRecord::NextId(id) => {
            out.push(TAG_NEXT_ID);
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
    out
}

fn decode_record(payload: &[u8]) -> Option<JournalRecord> {
    let (&tag, mut rest) = payload.split_first()?;
    let record = match tag {
        TAG_TENANT => JournalRecord::Tenant {
            tenant: take_name(&mut rest)?,
        },
        TAG_ADMIT => JournalRecord::Admit {
            tenant: take_name(&mut rest)?,
            id: take_u64(&mut rest)?,
            component: take_component(&mut rest)?,
        },
        TAG_EVICT => JournalRecord::Evict {
            tenant: take_name(&mut rest)?,
            id: take_u64(&mut rest)?,
        },
        TAG_MODE => {
            let (&kind, tail) = rest.split_first()?;
            rest = tail;
            // One u64 payload whatever the kind: deadline nanos for the
            // wall-clock budget, the unit count for the work budget.
            let payload = take_u64(&mut rest)?;
            JournalRecord::Mode(match kind {
                0 => SlaMode::Exact,
                1 => SlaMode::Budgeted {
                    deadline: Duration::from_nanos(payload),
                },
                2 => SlaMode::BudgetedUnits { units: payload },
                _ => return None,
            })
        }
        TAG_NEXT_ID => JournalRecord::NextId(take_u64(&mut rest)?),
        _ => return None,
    };
    rest.is_empty().then_some(record)
}

fn put_name(out: &mut Vec<u8>, name: &str) {
    let bytes = name.as_bytes();
    debug_assert!(bytes.len() <= usize::from(u16::MAX));
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn take_name(rest: &mut &[u8]) -> Option<String> {
    let (len_bytes, tail) = rest.split_at_checked(2)?;
    let len = usize::from(u16::from_le_bytes(len_bytes.try_into().ok()?));
    let (name, tail) = tail.split_at_checked(len)?;
    *rest = tail;
    String::from_utf8(name.to_vec()).ok()
}

fn take_u64(rest: &mut &[u8]) -> Option<u64> {
    let (bytes, tail) = rest.split_at_checked(8)?;
    *rest = tail;
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

/// Component wire layout: flags (bit 0 = periodic), wcet, absolute first
/// deadline, release offset, then the period for periodic components.
fn put_component(out: &mut Vec<u8>, component: &DemandComponent) {
    out.push(u8::from(component.period().is_some()));
    out.extend_from_slice(&component.wcet().as_u64().to_le_bytes());
    out.extend_from_slice(&component.first_deadline().as_u64().to_le_bytes());
    out.extend_from_slice(&component.release_offset().as_u64().to_le_bytes());
    if let Some(period) = component.period() {
        out.extend_from_slice(&period.as_u64().to_le_bytes());
    }
}

fn take_component(rest: &mut &[u8]) -> Option<DemandComponent> {
    let (&flags, tail) = rest.split_first()?;
    *rest = tail;
    if flags > 1 {
        return None;
    }
    let wcet = Time::new(take_u64(rest)?);
    let deadline = take_u64(rest)?;
    let offset = Time::new(take_u64(rest)?);
    // The stored deadline is absolute (offset + relative); reconstruct
    // via the relative-deadline constructors so the round trip is exact.
    let relative = Time::new(deadline.checked_sub(offset.as_u64())?);
    Some(if flags == 1 {
        let period = Time::new(take_u64(rest)?);
        DemandComponent::periodic_from(wcet, relative, period, offset)
    } else {
        DemandComponent::one_shot(wcet, relative, offset)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("edf-journal-test-{}-{tag}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn work_unit_mode_records_round_trip() {
        let path = temp_journal("unit-mode");
        let record = JournalRecord::Mode(SlaMode::BudgetedUnits { units: 123_456 });
        {
            let (mut journal, existing) = Journal::open(&path).expect("open");
            assert!(existing.is_empty());
            journal.append(&record).expect("append");
        }
        let (_, replayed) = Journal::open(&path).expect("reopen");
        assert_eq!(replayed, vec![record]);
        let mut state = JournalState::default();
        for replayed in &replayed {
            state.apply(replayed);
        }
        assert_eq!(state.mode, Some(SlaMode::BudgetedUnits { units: 123_456 }));
        let _ = std::fs::remove_file(&path);
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Tenant {
                tenant: "alpha".into(),
            },
            JournalRecord::Admit {
                tenant: "alpha".into(),
                id: 0,
                component: DemandComponent::periodic(Time::new(4), Time::new(9), Time::new(10)),
            },
            JournalRecord::Admit {
                tenant: "alpha".into(),
                id: 1,
                component: DemandComponent::one_shot(Time::new(2), Time::new(5), Time::new(3)),
            },
            JournalRecord::Mode(SlaMode::Budgeted {
                deadline: Duration::from_micros(1500),
            }),
            JournalRecord::Evict {
                tenant: "alpha".into(),
                id: 0,
            },
            JournalRecord::NextId(17),
        ]
    }

    #[test]
    fn round_trips_every_record_kind() {
        let path = temp_journal("roundtrip");
        let written = sample_records();
        {
            let (mut journal, replayed) = Journal::open(&path).expect("open");
            assert!(replayed.is_empty());
            for record in &written {
                journal.append(record).expect("append");
            }
            journal.sync().expect("sync");
        }
        let (journal, replayed) = Journal::open(&path).expect("reopen");
        assert_eq!(replayed, written);
        assert_eq!(journal.record_count(), written.len() as u64);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_rebuilds_committed_state() {
        let mut state = JournalState::default();
        for record in sample_records() {
            state.apply(&record);
        }
        assert_eq!(state.tenants.len(), 1);
        let (name, committed) = &state.tenants[0];
        assert_eq!(name, "alpha");
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].0, 1);
        assert_eq!(
            state.mode,
            Some(SlaMode::Budgeted {
                deadline: Duration::from_micros(1500)
            })
        );
        assert_eq!(state.next_id, 17);
    }

    #[test]
    fn short_write_truncates_to_the_valid_prefix() {
        for keep in [0usize, 1, 5, 11, 12, 13] {
            let path = temp_journal(&format!("short-{keep}"));
            let records = sample_records();
            {
                let (mut journal, _) = Journal::open(&path).expect("open");
                journal.append(&records[0]).expect("append");
                journal.append(&records[1]).expect("append");
                journal
                    .append_faulty(&records[2], WriteFault::ShortWrite { keep })
                    .expect("faulty append");
            }
            let (journal, replayed) = Journal::open(&path).expect("reopen");
            assert_eq!(replayed, records[..2], "keep={keep}");
            // The torn tail is gone: appends continue cleanly.
            let mut journal = journal;
            journal.append(&records[3]).expect("append after recovery");
            drop(journal);
            let (_, replayed) = Journal::open(&path).expect("second reopen");
            assert_eq!(
                replayed,
                vec![records[0].clone(), records[1].clone(), records[3].clone()]
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn bit_flip_is_caught_by_the_checksum() {
        for bit in [0u64, 7, 31, 64, 95, 96, 150] {
            let path = temp_journal(&format!("flip-{bit}"));
            let records = sample_records();
            {
                let (mut journal, _) = Journal::open(&path).expect("open");
                journal.append(&records[0]).expect("append");
                journal
                    .append_faulty(&records[1], WriteFault::BitFlip { bit })
                    .expect("faulty append");
                // A record after the corruption is unreachable (prefix
                // semantics) — deliberately so.
                journal.append(&records[2]).expect("append");
            }
            let (_, replayed) = Journal::open(&path).expect("reopen");
            assert_eq!(replayed, records[..1], "bit={bit}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn compaction_is_atomic_and_replayable() {
        let path = temp_journal("compact");
        let records = sample_records();
        {
            let (mut journal, _) = Journal::open(&path).expect("open");
            for record in &records {
                journal.append(record).expect("append");
            }
            let snapshot = vec![
                JournalRecord::NextId(17),
                JournalRecord::Tenant {
                    tenant: "alpha".into(),
                },
                JournalRecord::Admit {
                    tenant: "alpha".into(),
                    id: 1,
                    component: DemandComponent::one_shot(Time::new(2), Time::new(5), Time::new(3)),
                },
            ];
            journal.compact(&snapshot).expect("compact");
            assert_eq!(journal.record_count(), 3);
            // Appends after compaction land in the new file.
            journal
                .append(&JournalRecord::Evict {
                    tenant: "alpha".into(),
                    id: 1,
                })
                .expect("append post-compact");
        }
        let (_, replayed) = Journal::open(&path).expect("reopen");
        assert_eq!(replayed.len(), 4);
        let mut state = JournalState::default();
        for record in &replayed {
            state.apply(record);
        }
        assert_eq!(state.tenants[0].1.len(), 0);
        assert_eq!(state.next_id, 17);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_or_torn_header_restarts_the_journal() {
        let path = temp_journal("header");
        std::fs::write(&path, b"not a journal").expect("seed garbage");
        let (mut journal, replayed) = Journal::open(&path).expect("open over garbage");
        assert!(replayed.is_empty());
        journal.append(&sample_records()[0]).expect("append");
        drop(journal);
        let (_, replayed) = Journal::open(&path).expect("reopen");
        assert_eq!(replayed.len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
