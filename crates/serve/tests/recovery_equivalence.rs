//! Replay-equivalence property tests: any sequence of journaled service
//! operations (admits, evictions, mode changes, snapshots), recovered by
//! replaying the journal, yields a service whose observable state —
//! `STAT` summaries (bit-identical utilization), mode, id allocator and
//! the verdict of every subsequent analysis — matches the live pre-crash
//! service exactly.
//!
//! This extends the `edit_equivalence` argument one layer up: that suite
//! proves the *view's* delta path is bit-identical to a cold
//! preparation; this one proves the journal's replay (which rebuilds
//! each tenant cold, in committed insertion order) lands on the same
//! state the live service reached incrementally, so a crash-restart can
//! never drift from the pre-crash answers.

use std::path::PathBuf;
use std::time::Duration;

use edf_analysis::workload::DemandComponent;
use edf_model::Time;
use edf_serve::{AdmissionDecision, AdmissionService, SlaMode};
use proptest::prelude::*;

/// A fresh per-case journal path under the target-adjacent temp dir.
fn journal_path(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edf-serve-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{tag}-{case}.journal"))
}

/// One service operation.  Selector operands are reduced modulo the live
/// state at application time, so every generated sequence is valid.
#[derive(Debug, Clone)]
enum Op {
    Admit {
        tenant: usize,
        component: DemandComponent,
    },
    Evict {
        tenant: usize,
        selector: usize,
    },
    Mode {
        budget_micros: Option<u64>,
    },
    Snapshot,
}

/// Valid components only: the journal records committed state, which the
/// front door already validated.
fn arb_component() -> impl Strategy<Value = DemandComponent> {
    (0u8..=1, 1u64..=9, 1u64..=60, 2u64..=80).prop_map(|(kind, c, d, x)| {
        if kind == 0 {
            DemandComponent::periodic(Time::new(c.min(x)), Time::new(d), Time::new(x))
        } else {
            DemandComponent::one_shot(Time::new(c.min(6)), Time::new(d.max(1)), Time::new(x % 21))
        }
    })
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..=9, 0usize..4, arb_component(), 0usize..8, 0u64..=2).prop_map(
        |(kind, tenant, component, selector, mode)| match kind {
            // Admissions weighted up so journals accumulate real state.
            0..=5 => Op::Admit { tenant, component },
            6 | 7 => Op::Evict { tenant, selector },
            8 => Op::Mode {
                budget_micros: match mode {
                    0 => None,
                    1 => Some(0),
                    _ => Some(100_000),
                },
            },
            _ => Op::Snapshot,
        },
    )
}

const TENANTS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Drives `ops` against a journaled service, tracking the committed ids
/// per tenant so evictions target live components.
fn drive(service: &mut AdmissionService, ops: &[Op]) {
    let mut live: Vec<Vec<u64>> = vec![Vec::new(); TENANTS.len()];
    for op in ops {
        match op {
            Op::Admit { tenant, component } => {
                let name = TENANTS[tenant % TENANTS.len()];
                let response = service.admit(name, *component).expect("valid component");
                if let AdmissionDecision::Admitted(id) = response.decision {
                    live[tenant % TENANTS.len()].push(id);
                }
            }
            Op::Evict { tenant, selector } => {
                let index = tenant % TENANTS.len();
                if live[index].is_empty() {
                    continue;
                }
                let position = selector % live[index].len();
                let id = live[index].remove(position);
                service.evict(TENANTS[index], id).expect("live id");
            }
            Op::Mode { budget_micros } => {
                let mode = match budget_micros {
                    None => SlaMode::Exact,
                    Some(micros) => SlaMode::Budgeted {
                        deadline: Duration::from_micros(*micros),
                    },
                };
                service.set_mode(mode).expect("journal append");
            }
            Op::Snapshot => {
                service.snapshot().expect("journal compaction");
            }
        }
    }
}

/// Asserts the recovered service is observably identical to the live
/// one: per-tenant `STAT` (components and bit-identical utilization),
/// mode, and the decision + analysis of a post-recovery what-if probe on
/// every tenant (exact mode, so analyses are deterministic).
fn assert_equivalent(live: &mut AdmissionService, recovered: &mut AdmissionService) {
    assert_eq!(live.tenant_count(), recovered.tenant_count());
    assert_eq!(live.mode(), recovered.mode());
    for tenant in TENANTS {
        let live_stat = live.stat(tenant);
        let recovered_stat = recovered.stat(tenant);
        match (live_stat, recovered_stat) {
            (None, None) => continue,
            (Some(a), Some(b)) => {
                assert_eq!(a.components, b.components, "tenant {tenant}");
                assert_eq!(
                    a.utilization.to_bits(),
                    b.utilization.to_bits(),
                    "tenant {tenant} utilization must be bit-identical"
                );
            }
            (a, b) => panic!("tenant {tenant} presence diverged: {a:?} vs {b:?}"),
        }
        // Drive both through the same exact-mode probes: committed state
        // equivalence must extend to every subsequent verdict.
        live.set_mode(SlaMode::Exact).expect("no journal errors");
        recovered
            .set_mode(SlaMode::Exact)
            .expect("no journal errors");
        for probe in [
            DemandComponent::periodic(Time::new(1), Time::new(9), Time::new(10)),
            DemandComponent::periodic(Time::new(7), Time::new(8), Time::new(10)),
        ] {
            let a = live.what_if(tenant, probe).expect("valid probe");
            let b = recovered.what_if(tenant, probe).expect("valid probe");
            assert_eq!(a.decision, b.decision, "tenant {tenant}");
            assert_eq!(a.analysis, b.analysis, "tenant {tenant}");
        }
    }
}

proptest! {
    /// Live service → journal → recovered service: observably identical.
    #[test]
    fn recovery_is_bit_identical(ops in prop::collection::vec(arb_op(), 1..=24), case in 0u64..u64::MAX) {
        let path = journal_path("replay", case);
        let _ = std::fs::remove_file(&path);
        let mut live = AdmissionService::recover(&path).expect("fresh journal");
        drive(&mut live, &ops);
        let mut recovered = AdmissionService::recover(&path).expect("replay journal");
        assert_equivalent(&mut live, &mut recovered);
        let _ = std::fs::remove_file(&path);
    }

    /// Recovery composes: crash → recover → more ops → crash → recover
    /// still matches a service that lived through everything.
    #[test]
    fn recovery_composes_across_restarts(
        first in prop::collection::vec(arb_op(), 1..=12),
        second in prop::collection::vec(arb_op(), 1..=12),
        case in 0u64..u64::MAX,
    ) {
        let path = journal_path("restart", case);
        let _ = std::fs::remove_file(&path);
        {
            let mut service = AdmissionService::recover(&path).expect("fresh journal");
            drive(&mut service, &first);
            // Dropped without any shutdown: the journal alone carries the state.
        }
        let mut resumed = AdmissionService::recover(&path).expect("replay journal");
        drive(&mut resumed, &second);
        let mut recovered = AdmissionService::recover(&path).expect("second replay");
        assert_equivalent(&mut resumed, &mut recovered);
        let _ = std::fs::remove_file(&path);
    }
}
