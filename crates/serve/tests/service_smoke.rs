//! End-to-end smoke test of the `edf-serve` binary: launch the real
//! process, drive an admit → what-if → evict session over its stdin/stdout
//! line protocol, and assert both the verdicts and a bounded per-request
//! latency.  This is the same script the CI service-smoke step runs.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};

/// Generous per-request latency ceiling.  Delta re-analysis of these tiny
/// systems takes microseconds; the ceiling only guards against pathological
/// regressions (e.g. accidentally re-preparing from scratch in a loop)
/// while staying robust to loaded CI machines.
const LATENCY_CEILING_US: u128 = 2_000_000;

struct Service {
    child: Child,
    requests: ChildStdin,
    replies: BufReader<std::process::ChildStdout>,
}

impl Service {
    fn launch() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_edf-serve"))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("launch edf-serve");
        let requests = child.stdin.take().expect("piped stdin");
        let replies = BufReader::new(child.stdout.take().expect("piped stdout"));
        Service {
            child,
            requests,
            replies,
        }
    }

    fn roundtrip(&mut self, request: &str) -> String {
        writeln!(self.requests, "{request}").expect("write request");
        self.requests.flush().expect("flush request");
        let mut reply = String::new();
        self.replies.read_line(&mut reply).expect("read reply");
        assert!(!reply.is_empty(), "service hung up on: {request}");
        reply.trim_end().to_owned()
    }

    fn quit(mut self) {
        assert_eq!(self.roundtrip("QUIT"), "BYE");
        let status = self.child.wait().expect("service exit");
        assert!(status.success(), "service exited with {status}");
    }
}

/// Extracts the `us=<n>` latency field the service stamps on admission
/// replies and asserts it stays under the ceiling.
fn assert_bounded_latency(reply: &str) {
    let micros: u128 = reply
        .split_whitespace()
        .find_map(|field| field.strip_prefix("us="))
        .unwrap_or_else(|| panic!("no us= field in: {reply}"))
        .parse()
        .expect("numeric us= field");
    assert!(
        micros < LATENCY_CEILING_US,
        "request took {micros}us (ceiling {LATENCY_CEILING_US}us): {reply}"
    );
}

#[test]
fn admit_whatif_evict_session() {
    let mut service = Service::launch();

    // Admit two feasible components for tenant alpha.
    let first = service.roundtrip("ADMIT alpha 4 9 10");
    assert!(
        first.starts_with("ADMITTED id=0 verdict=feasible"),
        "{first}"
    );
    assert_bounded_latency(&first);
    let second = service.roundtrip("ADMIT alpha 3 14 20");
    assert!(
        second.starts_with("ADMITTED id=1 verdict=feasible"),
        "{second}"
    );
    assert_bounded_latency(&second);

    // An overloading third component is rejected and leaves no trace.
    let rejected = service.roundtrip("ADMIT alpha 9 9 10");
    assert!(
        rejected.starts_with("REJECTED verdict=infeasible"),
        "{rejected}"
    );
    assert_bounded_latency(&rejected);
    let stat = service.roundtrip("STAT alpha");
    assert!(stat.starts_with("STAT tenant=alpha components=2"), "{stat}");

    // What-if mirrors the admit verdicts without committing.
    let would_fit = service.roundtrip("WHATIF alpha 1 19 20");
    assert!(
        would_fit.starts_with("WHATIF admit verdict=feasible"),
        "{would_fit}"
    );
    assert_bounded_latency(&would_fit);
    let would_overload = service.roundtrip("WHATIF alpha 9 9 10");
    assert!(
        would_overload.starts_with("WHATIF reject verdict=infeasible"),
        "{would_overload}"
    );
    assert!(service
        .roundtrip("STAT alpha")
        .starts_with("STAT tenant=alpha components=2"));

    // Tenants are independent: beta admits what alpha would reject.
    let beta = service.roundtrip("ADMIT beta 9 9 10");
    assert!(beta.starts_with("ADMITTED id=2 verdict=feasible"), "{beta}");

    // Evict alpha's first component; the freed capacity admits the
    // previously rejected one.
    assert_eq!(service.roundtrip("EVICT alpha 0"), "EVICTED id=0");
    assert!(service
        .roundtrip("EVICT alpha 0")
        .starts_with("ERR code=unknown-component no component 0"));
    let readmitted = service.roundtrip("ADMIT alpha 9 11 12");
    assert!(
        readmitted.starts_with("ADMITTED id=3 verdict=feasible"),
        "{readmitted}"
    );

    // Budgeted mode with zero budget answers an honest unknown — never a
    // wrong verdict — and declines the admission.
    assert_eq!(service.roundtrip("MODE budget 0"), "MODE budget us=0");
    let undetermined = service.roundtrip("ADMIT alpha 1 19 20");
    assert!(
        undetermined.starts_with("UNDETERMINED verdict=unknown"),
        "{undetermined}"
    );
    assert!(service
        .roundtrip("STAT alpha")
        .starts_with("STAT tenant=alpha components=2"));

    // ... but a provable overload is still rejected under zero budget (the
    // exact U > 1 comparison is free), and a generous budget is decisive.
    let overload = service.roundtrip("ADMIT gamma 11 12 10");
    assert!(
        overload.starts_with("REJECTED verdict=infeasible"),
        "{overload}"
    );
    assert_eq!(
        service.roundtrip("MODE budget 1000000"),
        "MODE budget us=1000000"
    );
    let decisive = service.roundtrip("ADMIT alpha 1 19 20");
    assert!(
        decisive.starts_with("ADMITTED id=4 verdict=feasible"),
        "{decisive}"
    );

    service.quit();
}
