//! Service-level budget monotonicity: a decisive verdict reached at a
//! work-unit allowance `B` is reproduced **identically** at every
//! allowance `B' ≥ B` — growing a request's budget can only convert
//! `Unknown`s into answers, never change an answer — across workload
//! families (periodic and one-shot components, light through overloaded)
//! and across both analysis preparations (the sequential per-request
//! path and the wave-batched path, which must also agree with each other
//! at every allowance).
//!
//! Allowances are expressed in [`SlaMode::BudgetedUnits`], so the whole
//! property is machine-independent: no wall clock, no calibration, the
//! same exhaustion point on every run.

use edf_analysis::workload::DemandComponent;
use edf_model::Time;
use edf_serve::{AdmissionService, SlaMode};
use proptest::prelude::*;

/// Both component families the protocol accepts: periodic and one-shot.
fn arb_component() -> impl Strategy<Value = DemandComponent> {
    (0u64..2, 1u64..=12, 1u64..=40, 2u64..=40).prop_map(|(family, cost, deadline, third)| {
        if family == 0 {
            DemandComponent::periodic(
                Time::new(cost.min(third)),
                Time::new(deadline),
                Time::new(third),
            )
        } else {
            DemandComponent::one_shot(Time::new(cost), Time::new(deadline), Time::new(third % 21))
        }
    })
}

/// A committed base plus probe components, spread over a few tenants so
/// the wave path has independent systems to fan out.
fn arb_scenario() -> impl Strategy<Value = (Vec<DemandComponent>, Vec<DemandComponent>)> {
    (
        prop::collection::vec(arb_component(), 0..=4),
        prop::collection::vec(arb_component(), 1..=5),
    )
}

const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];

/// Builds a service with `base` committed under exact mode (only the
/// feasible prefixes commit), then switched to a `units` allowance.
fn service_with(base: &[DemandComponent], units: u64) -> AdmissionService {
    let mut service = AdmissionService::new();
    for (index, &component) in base.iter().enumerate() {
        let tenant = TENANTS[index % TENANTS.len()];
        let _ = service.admit(tenant, component).expect("no faults active");
    }
    service
        .set_mode(SlaMode::BudgetedUnits { units })
        .expect("no journal attached");
    service
}

proptest! {
    /// The tentpole property: walk a doubling allowance grid and pin
    /// that (a) every allowance is internally deterministic, (b) wave
    /// and sequential analyses agree bit for bit at every allowance,
    /// and (c) once any request's verdict turns decisive it stays that
    /// exact analysis for every larger allowance, the uncapped exact
    /// answer included.
    #[test]
    fn decisive_verdicts_survive_any_larger_budget(
        scenario in arb_scenario(),
    ) {
        let (base, probes) = scenario;
        let requests: Vec<(&str, DemandComponent)> = probes
            .iter()
            .enumerate()
            .map(|(index, &component)| (TENANTS[index % TENANTS.len()], component))
            .collect();
        let mut decisive = vec![None; requests.len()];
        let mut grid: Vec<u64> = (0..18).map(|power| 1u64 << power).collect();
        grid.insert(0, 0);
        grid.push(u64::MAX);
        for units in grid {
            // Sequential preparation.
            let mut sequential = service_with(&base, units);
            let one_by_one: Vec<_> = requests
                .iter()
                .map(|&(tenant, component)| {
                    sequential
                        .what_if(tenant, component)
                        .expect("valid component")
                        .analysis
                })
                .collect();
            // Wave preparation over the same requests.
            let mut batched = service_with(&base, units);
            let wave: Vec<_> = batched
                .what_if_many(&requests)
                .into_iter()
                .map(|response| response.expect("valid component").analysis)
                .collect();
            prop_assert_eq!(
                &wave, &one_by_one,
                "units={}: wave and sequential preparations diverged", units
            );
            for (index, analysis) in one_by_one.into_iter().enumerate() {
                if let Some(first) = &decisive[index] {
                    prop_assert_eq!(
                        &analysis, first,
                        "request {} at units={}: decisive analysis changed under a \
                         larger budget", index, units
                    );
                } else if analysis.verdict.is_decisive() {
                    decisive[index] = Some(analysis);
                }
            }
        }
        // Anchor against the uncapped exact mode: whenever it decides, the
        // budget grid must have reached the same verdict (the top of the
        // grid is effectively unlimited), and the grid never decides a
        // request the exact test leaves open.
        let mut exact = service_with(&base, 0);
        exact.set_mode(SlaMode::Exact).expect("no journal attached");
        for (index, &(tenant, component)) in requests.iter().enumerate() {
            let verdict = exact
                .what_if(tenant, component)
                .expect("valid component")
                .analysis
                .verdict;
            match &decisive[index] {
                Some(analysis) => prop_assert_eq!(
                    analysis.verdict, verdict,
                    "request {}: budgeted decision disagrees with exact mode", index
                ),
                None => prop_assert!(
                    !verdict.is_decisive(),
                    "request {} never decided but exact mode answers {:?}",
                    index, verdict
                ),
            }
        }
    }
}
