//! Deterministic fault-injection harness: drive the full admission
//! protocol while a seeded [`FaultPlan`] injects analysis panics,
//! watchdog fires, work-budget exhaustions and journal write faults
//! (torn short-writes and bit flips) through the service's *production*
//! fault paths, and assert the core robustness invariants:
//!
//! 1. **Exactly one reply per request** — never dropped, never
//!    duplicated, faults included.
//! 2. **Never a wrong verdict** — every decisive reply is re-verified by
//!    running the uncapped exact test against a shadow model of the
//!    committed state; degradation is always an honest `Unknown` (or a
//!    coded error), never a fabricated verdict.
//! 3. **State always recoverable** — after the faulted session, the
//!    journal's valid prefix replays into exactly the state implied by
//!    the acknowledged commits up to the first corrupted append
//!    ([`FaultReport::first_faulty_append`] is the ground-truth
//!    boundary).
//!
//! Every case derives from one seed, so a failure replays exactly.

use std::path::PathBuf;
use std::time::Duration;

use edf_analysis::tests::AllApproximatedTest;
use edf_analysis::workload::{DemandComponent, PreparedWorkload};
use edf_analysis::{FeasibilityTest, Verdict};
use edf_model::Time;
use edf_serve::fault::{FaultPlan, FaultReport, InjectedFault};
use edf_serve::journal::{Journal, JournalState};
use edf_serve::{AdmissionDecision, AdmissionService, RequestError, SlaMode, WatchdogConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];

/// Keeps injected-panic backtraces out of the test output (hundreds fire
/// per run); every other panic still reports through the default hook.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|message| message.contains("injected analysis panic"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

/// A deterministic request stream derived from `seed` (disjoint from the
/// fault plan's stream, which uses `seed ^ !0`).
#[derive(Debug, Clone, Copy)]
enum Request {
    Admit {
        tenant: usize,
        component: DemandComponent,
    },
    WhatIf {
        tenant: usize,
        component: DemandComponent,
    },
    Evict {
        tenant: usize,
        selector: usize,
    },
}

fn component_from(rng: &mut StdRng) -> DemandComponent {
    let period = rng.gen_range(2u64..40);
    let cost = rng.gen_range(1u64..12).min(period);
    let deadline = rng.gen_range(1u64..40);
    DemandComponent::periodic(Time::new(cost), Time::new(deadline), Time::new(period))
}

fn request_stream(seed: u64, len: usize) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let tenant = rng.gen_range(0u64..TENANTS.len() as u64) as usize;
            match rng.gen_range(0u32..10) {
                0..=5 => Request::Admit {
                    tenant,
                    component: component_from(&mut rng),
                },
                6 | 7 => Request::WhatIf {
                    tenant,
                    component: component_from(&mut rng),
                },
                _ => Request::Evict {
                    tenant,
                    selector: rng.gen_range(0u64..8) as usize,
                },
            }
        })
        .collect()
}

/// The shadow model: per-tenant committed `(id, component)` lists built
/// exclusively from the service's *acknowledged replies*, plus the
/// append sequence the journal should contain.  Divergence between this
/// and the service would surface as a wrong re-verified verdict or a
/// recovery mismatch.
#[derive(Debug, Default)]
struct Shadow {
    committed: Vec<Vec<(u64, DemandComponent)>>,
    /// Journal appends implied by acknowledged replies, in order:
    /// `(tenant index or usize::MAX for mode records, admitted id or 0)`.
    appends: u64,
}

fn journal_path(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edf-serve-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{tag}-{seed}.journal"))
}

/// Runs the exact (uncapped) test on the shadow committed state of
/// `tenant` plus `component`, returning the ground-truth verdict.
fn ground_truth(shadow: &Shadow, tenant: usize, component: DemandComponent) -> Verdict {
    let mut components: Vec<DemandComponent> = shadow.committed[tenant]
        .iter()
        .map(|&(_, component)| component)
        .collect();
    components.push(component);
    let prepared = PreparedWorkload::from_components(components);
    AllApproximatedTest::new()
        .analyze_prepared(&prepared)
        .verdict
}

/// Drives one faulted session end to end and checks invariants 1 and 2;
/// returns the shadow model and the fault report for the recovery check.
fn run_faulted_session(
    service: &mut AdmissionService,
    requests: &[Request],
) -> (Shadow, FaultReport) {
    let mut shadow = Shadow {
        committed: vec![Vec::new(); TENANTS.len()],
        appends: 0,
    };
    // Tenant-creation records are journaled on first touch; track which
    // tenants the service has seen so the shadow counts those appends.
    let mut seen = [false; TENANTS.len()];
    for (index, request) in requests.iter().enumerate() {
        // Invariant 1 (one reply per request) is structural here: every
        // arm produces exactly one Result and we assert on it.  The
        // batched path is covered by `wave_faults_preserve_invariants`.
        match *request {
            Request::Admit { tenant, component } => {
                let name = TENANTS[tenant];
                if !seen[tenant] {
                    // The service journals the Tenant record before the
                    // analysis can panic, so creation counts an append
                    // whatever the outcome.
                    shadow.appends += 1;
                    seen[tenant] = true;
                }
                match service.admit(name, component) {
                    Ok(response) => {
                        match response.decision {
                            AdmissionDecision::Admitted(id) => {
                                // Invariant 2: an acknowledged admission
                                // must be exactly-feasible against the
                                // shadow state.
                                assert_eq!(
                                    ground_truth(&shadow, tenant, component),
                                    Verdict::Feasible,
                                    "request {index}: admitted but ground truth disagrees"
                                );
                                shadow.committed[tenant].push((id, component));
                                shadow.appends += 1;
                            }
                            AdmissionDecision::Rejected => {
                                assert_eq!(
                                    ground_truth(&shadow, tenant, component),
                                    Verdict::Infeasible,
                                    "request {index}: rejected but ground truth disagrees"
                                );
                            }
                            // Honest degradation: never verified wrong,
                            // never committed.
                            AdmissionDecision::Undetermined => {
                                assert_eq!(response.analysis.verdict, Verdict::Unknown);
                            }
                        }
                    }
                    Err(RequestError::AnalysisPanic { .. }) => {
                        // Isolated; no verdict fabricated, no commit.
                    }
                    Err(error) => panic!("request {index}: unexpected error {error}"),
                }
            }
            Request::WhatIf { tenant, component } => {
                let name = TENANTS[tenant];
                match service.what_if(name, component) {
                    Ok(response) => match response.decision {
                        AdmissionDecision::Admitted(_) => assert_eq!(
                            ground_truth(&shadow, tenant, component),
                            Verdict::Feasible,
                            "request {index}: what-if admit but ground truth disagrees"
                        ),
                        AdmissionDecision::Rejected => assert_eq!(
                            ground_truth(&shadow, tenant, component),
                            Verdict::Infeasible,
                            "request {index}: what-if reject but ground truth disagrees"
                        ),
                        AdmissionDecision::Undetermined => {
                            assert_eq!(response.analysis.verdict, Verdict::Unknown);
                        }
                    },
                    Err(RequestError::AnalysisPanic { .. }) => {}
                    Err(error) => panic!("request {index}: unexpected error {error}"),
                }
            }
            Request::Evict { tenant, selector } => {
                let name = TENANTS[tenant];
                if shadow.committed[tenant].is_empty() {
                    match service.evict(name, u64::MAX) {
                        Err(
                            RequestError::UnknownTenant { .. }
                            | RequestError::UnknownComponent { .. },
                        ) => {}
                        other => panic!("request {index}: expected unknown target, got {other:?}"),
                    }
                } else {
                    let position = selector % shadow.committed[tenant].len();
                    let (id, _) = shadow.committed[tenant][position];
                    service.evict(name, id).expect("shadow-live id");
                    shadow.committed[tenant].remove(position);
                    shadow.appends += 1;
                }
            }
        }
    }
    let report = service
        .take_fault_plan()
        .expect("plan attached")
        .report()
        .clone();
    (shadow, report)
}

/// Invariant 3: the journal's valid prefix replays into exactly the
/// acknowledged state up to the first corrupted append.
fn assert_recoverable(path: &PathBuf, shadow: &Shadow, report: &FaultReport) {
    let (_journal, records) = Journal::open(path).expect("reopen journal");
    let mut state = JournalState::default();
    for record in &records {
        state.apply(record);
    }
    match report.first_faulty_append() {
        None => {
            // No write faults: recovery must be the full acknowledged
            // state, tenant by tenant, id for id.
            assert_eq!(records.len() as u64, shadow.appends, "append count");
            for (index, name) in TENANTS.iter().enumerate() {
                let recovered: &[(u64, DemandComponent)] = state
                    .tenants
                    .iter()
                    .find(|(tenant, _)| tenant == name)
                    .map(|(_, committed)| committed.as_slice())
                    .unwrap_or(&[]);
                assert_eq!(
                    recovered,
                    shadow.committed[index].as_slice(),
                    "tenant {name} recovered committed list"
                );
            }
        }
        Some(boundary) => {
            // A torn or flipped append ends the valid prefix: replay
            // recovers at least the records before it and nothing after
            // a corrupt frame can resurrect (the reader stops at the
            // first bad frame, so the record count is bounded by the
            // boundary).
            assert!(
                records.len() as u64 <= boundary,
                "replay read past the first corrupted append ({} > {boundary})",
                records.len()
            );
            // The plan caps a short write's `keep` below the 12-byte
            // frame header, so the boundary is always a real loss point;
            // everything before it must survive.
            let clean_prefix = report
                .injected
                .iter()
                .filter_map(|fault| match fault {
                    InjectedFault::Write { append, .. } => Some(*append),
                    _ => None,
                })
                .min()
                .expect("boundary implies a write fault");
            assert_eq!(clean_prefix, boundary);
            assert_eq!(
                records.len() as u64,
                boundary,
                "the clean prefix before the first fault must replay in full"
            );
        }
    }
}

/// One full faulted scenario for a given seed and fault rates.
fn faulted_scenario(seed: u64, panics: u32, fires: u32, exhausts: u32, writes: u32) {
    silence_injected_panics();
    let path = journal_path("session", seed);
    let _ = std::fs::remove_file(&path);
    let mut service = AdmissionService::recover(&path).expect("fresh journal");
    service.set_watchdog(Some(WatchdogConfig::with_guard(Duration::from_secs(5))));
    service.set_fault_plan(
        FaultPlan::from_seed(seed ^ !0, panics, fires, writes)
            .with_budget_exhaust_per_mille(exhausts),
    );
    let requests = request_stream(seed, 60);
    let (shadow, report) = run_faulted_session(&mut service, &requests);
    drop(service);
    assert_recoverable(&path, &shadow, &report);
    let _ = std::fs::remove_file(&path);
}

proptest! {
    /// Analysis panics and watchdog fires only: every reply is honest,
    /// the journal (never corrupted) recovers the full acknowledged
    /// state.
    #[test]
    fn panics_and_fires_never_fabricate_verdicts(seed in 0u64..u64::MAX) {
        faulted_scenario(seed, 150, 150, 0, 0);
    }

    /// Seeded work-budget exhaustions unwound through the production
    /// checkpoints: every shed request is an honest `Unknown`, nothing
    /// exhausted ever commits, and the journal recovers in full.
    #[test]
    fn budget_exhaustions_stay_honest_and_uncommitted(seed in 0u64..u64::MAX) {
        faulted_scenario(seed, 0, 0, 400, 0);
    }

    /// Torn and bit-flipped journal appends: the valid prefix replays
    /// exactly, decisions stay verified-correct throughout.
    #[test]
    fn torn_journal_writes_recover_the_clean_prefix(seed in 0u64..u64::MAX) {
        faulted_scenario(seed, 0, 0, 0, 60);
    }

    /// Everything at once — the full storm.
    #[test]
    fn combined_fault_storm_holds_all_invariants(seed in 0u64..u64::MAX) {
        faulted_scenario(seed, 100, 100, 100, 40);
    }
}

/// The batched entry points under injected wave panics: exactly one
/// reply per request, panicked requests error individually, the rest
/// commit correctly and the committed state matches a shadow replay.
#[test]
fn wave_faults_preserve_invariants() {
    silence_injected_panics();
    let mut service = AdmissionService::new();
    service
        .set_fault_plan(FaultPlan::from_seed(11, 300, 100, 0).with_budget_exhaust_per_mille(300));
    let components: Vec<DemandComponent> = (0..12)
        .map(|index| {
            DemandComponent::periodic(
                Time::new(1 + index % 3),
                Time::new(9 + index),
                Time::new(20),
            )
        })
        .collect();
    let requests: Vec<(&str, DemandComponent)> = components
        .iter()
        .enumerate()
        .map(|(index, &component)| (TENANTS[index % TENANTS.len()], component))
        .collect();
    let responses = service.admit_many(&requests);
    assert_eq!(responses.len(), requests.len(), "one reply per request");
    let mut shadow: Vec<Vec<DemandComponent>> = vec![Vec::new(); TENANTS.len()];
    for (index, response) in responses.iter().enumerate() {
        let (_, component) = requests[index];
        let tenant = index % TENANTS.len();
        match response {
            Ok(ok) => match ok.decision {
                AdmissionDecision::Admitted(_) => shadow[tenant].push(component),
                AdmissionDecision::Rejected => {}
                AdmissionDecision::Undetermined => {
                    assert_eq!(ok.analysis.verdict, Verdict::Unknown, "honest unknown only");
                }
            },
            Err(RequestError::AnalysisPanic { .. }) => {}
            Err(error) => panic!("unexpected error {error}"),
        }
    }
    for (index, name) in TENANTS.iter().enumerate() {
        let stat = service.stat(name);
        let committed = stat.map_or(0, |stat| stat.components);
        assert_eq!(
            committed,
            shadow[index].len(),
            "tenant {name}: committed state matches acknowledged replies"
        );
    }
    let report = service.take_fault_plan().expect("plan attached");
    assert!(
        !report.report().injected.is_empty(),
        "seed 11 at these rates injects faults"
    );
}

/// Exact-mode requests are wrong-verdict-free even while the watchdog is
/// degrading and recovering around them (mode changes under fire).
#[test]
fn degradation_is_honest_under_sustained_fires() {
    let mut service = AdmissionService::with_mode(SlaMode::Exact);
    service.set_watchdog(Some(WatchdogConfig {
        guard: Duration::from_secs(5),
        trip_threshold: 2,
        recovery_threshold: 2,
        degraded_deadline: Duration::from_millis(20),
    }));
    service.set_fault_plan(FaultPlan::from_seed(21, 0, 1000, 0));
    let component = DemandComponent::periodic(Time::new(2), Time::new(9), Time::new(10));
    for _ in 0..6 {
        let response = service
            .admit("alpha", component)
            .expect("no panics injected");
        assert_eq!(
            response.analysis.verdict,
            Verdict::Unknown,
            "a fired guard answers Unknown, never a guess"
        );
        assert_eq!(response.decision, AdmissionDecision::Undetermined);
    }
    assert!(service.is_degraded(), "sustained fires shed load");
    assert_eq!(
        service.stat("alpha").expect("tenant created").components,
        0,
        "no unknown ever admitted"
    );
    service.take_fault_plan();
    for _ in 0..2 {
        service.admit("alpha", component).expect("clean request");
    }
    assert!(!service.is_degraded(), "clean requests recover the mode");
}
