//! Protocol fuzz property tests: arbitrary byte streams into the
//! production serve loop never panic, never kill the loop, produce
//! exactly one reply per non-blank line, and leave the service answering
//! correctly afterwards.
//!
//! The expected reply count is computed with the same
//! [`protocol::classify_line`] the serve loop uses, so the test and the
//! loop cannot disagree about what counts as a request.

use edf_serve::protocol::{self, LineClass, MAX_LINE_BYTES};
use edf_serve::AdmissionService;
use proptest::prelude::*;

/// Splits a raw script the way the capped line reader does: on `\n`,
/// with lines over [`MAX_LINE_BYTES`] marked truncated.  Returns the
/// number of replies the contract demands (one per non-blank line).
fn expected_replies(script: &[u8]) -> (usize, bool) {
    let mut replies = 0usize;
    let mut saw_quit = false;
    for line in script.split(|&byte| byte == b'\n') {
        if saw_quit {
            break;
        }
        // The reader decides truncation on the raw bytes before the
        // newline, and strips one trailing '\r' only from lines that
        // survived the cap (an unterminated final empty "line" after the
        // last '\n' is not a line at all).
        let truncated = line.len() > MAX_LINE_BYTES;
        let line = match line.last() {
            Some(b'\r') if !truncated => &line[..line.len() - 1],
            _ => line,
        };
        match protocol::classify_line(&line[..line.len().min(MAX_LINE_BYTES)], truncated) {
            LineClass::Blank => {}
            LineClass::TooLong | LineClass::BadUtf8 => replies += 1,
            LineClass::Request(request) => {
                replies += 1;
                let verb = request
                    .split_whitespace()
                    .next()
                    .expect("request is non-blank");
                if verb.eq_ignore_ascii_case("QUIT") {
                    saw_quit = true;
                }
            }
        }
    }
    (replies, saw_quit)
}

/// Raw fuzz bytes biased toward protocol-shaped traffic: interleaves
/// fully arbitrary bytes with fragments of real verbs, numbers and
/// separators so the fuzzer reaches deep parse paths, not just the
/// "unknown command" front door.
fn arb_script() -> impl Strategy<Value = Vec<u8>> {
    let fragment =
        (0u8..=7, prop::collection::vec(0u8..=255u8, 0..24)).prop_map(|(kind, raw)| -> Vec<u8> {
            match kind {
                0 => raw,
                1 => b"ADMIT a 4 9 10\n".to_vec(),
                2 => b"WHATIF tenant 1 ".to_vec(),
                3 => b"EVICT a 184467440737095516150\n".to_vec(),
                4 => b"MODE budget ".to_vec(),
                5 => b"STAT \xc3\x28\n".to_vec(),
                6 => b"\n".to_vec(),
                _ => b"ADMIT b 0 0 0\n".to_vec(),
            }
        });
    prop::collection::vec(fragment, 0..12).prop_map(|fragments| fragments.concat())
}

proptest! {
    /// The core fuzz invariant: one reply per non-blank line, no panics,
    /// no early exit, and the service still answers after the noise.
    #[test]
    fn arbitrary_bytes_one_reply_per_line(script in arb_script()) {
        let mut service = AdmissionService::new();
        let mut output = Vec::new();
        protocol::serve(&mut service, script.as_slice(), &mut output)
            .expect("in-memory transport never errors");
        let replies = output.split(|&byte| byte == b'\n').filter(|line| !line.is_empty()).count();
        let (expected, _saw_quit) = expected_replies(&script);
        prop_assert_eq!(replies, expected, "script {:?}", script);
        // Every reply is valid single-line UTF-8 (errors carry their code).
        let text = String::from_utf8(output).expect("replies are utf-8");
        for line in text.lines() {
            prop_assert!(!line.is_empty());
            if line.starts_with("ERR") {
                prop_assert!(line.starts_with("ERR code="), "uncoded error: {line}");
            }
        }
        // The service survived: a fresh session still round-trips.
        let mut after = Vec::new();
        protocol::serve(&mut service, &b"ADMIT survivor 4 9 10\nSTAT survivor\n"[..], &mut after)
            .expect("in-memory transport");
        let after = String::from_utf8(after).expect("utf-8 replies");
        let mut lines = after.lines();
        prop_assert!(lines.next().expect("admit reply").starts_with("ADMITTED id="));
        prop_assert!(lines.next().expect("stat reply").starts_with("STAT tenant=survivor components=1"));
    }

    /// Oversized lines (beyond the cap) answer exactly one bad-line error
    /// regardless of content, and never buffer the payload.
    #[test]
    fn oversized_lines_answer_once(filler in 0u8..=255u8, extra in 1usize..=3 * MAX_LINE_BYTES) {
        // A newline filler would dissolve the oversized line into blanks.
        let filler = if filler == b'\n' { b'#' } else { filler };
        let mut script = vec![filler; MAX_LINE_BYTES + extra];
        script.push(b'\n');
        script.extend_from_slice(b"STAT ghost\n");
        let mut service = AdmissionService::new();
        let mut output = Vec::new();
        protocol::serve(&mut service, script.as_slice(), &mut output)
            .expect("in-memory transport");
        let text = String::from_utf8(output).expect("utf-8 replies");
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), 2);
        prop_assert!(lines[0].starts_with("ERR code=bad-line"), "{}", lines[0]);
        prop_assert!(lines[1].starts_with("ERR code=unknown-tenant"), "{}", lines[1]);
    }
}
