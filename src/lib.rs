//! # `edf-feasibility`
//!
//! Fast exact feasibility analysis for uniprocessor real-time systems under
//! preemptive EDF scheduling — a Rust implementation of
//!
//! > K. Albers, F. Slomka. *Efficient Feasibility Analysis for Real-Time
//! > Systems with EDF Scheduling.* Design, Automation and Test in Europe
//! > (DATE), 2005.
//!
//! This facade crate re-exports the workspace members under one roof:
//!
//! * [`model`] (`edf-model`) — the sporadic task and event-stream models,
//!   plus the literature example task sets;
//! * [`analysis`] (`edf-analysis`) — the feasibility tests: Liu & Layland,
//!   density, Devi, processor demand, QPA, `SuperPos(x)`, and the paper's
//!   two new exact tests (dynamic-error and all-approximated) together with
//!   the feasibility bounds of §4.3;
//! * [`sim`] (`edf-sim`) — a discrete-event EDF / fixed-priority scheduler
//!   simulator used as an independent oracle;
//! * [`gen`] (`edf-gen`) — reproducible random task-set generation
//!   (UUniFast, period and deadline-gap control);
//! * [`experiments`] (`edf-experiments`) — the harness regenerating every
//!   figure and table of the paper's evaluation.
//!
//! The most common types are re-exported at the crate root.
//!
//! # Quick start
//!
//! ```
//! use edf_feasibility::{AllApproximatedTest, FeasibilityTest, Task, TaskSet, Time, Verdict};
//!
//! # fn main() -> Result<(), edf_feasibility::TaskError> {
//! let task_set = TaskSet::from_tasks(vec![
//!     Task::new(Time::new(2), Time::new(7), Time::new(10))?.named("control loop"),
//!     Task::new(Time::new(3), Time::new(9), Time::new(25))?.named("telemetry"),
//!     Task::new(Time::new(10), Time::new(60), Time::new(80))?.named("logging"),
//! ]);
//!
//! let analysis = AllApproximatedTest::new().analyze(&task_set);
//! assert_eq!(analysis.verdict, Verdict::Feasible);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use edf_analysis as analysis;
pub use edf_experiments as experiments;
pub use edf_gen as gen;
pub use edf_model as model;
pub use edf_sim as sim;

pub use edf_analysis::event_stream_analysis::MixedSystem;
pub use edf_analysis::exhaustive::exhaustive_check;
pub use edf_analysis::sensitivity::{breakdown_scaling, breakdown_scaling_exact, wcet_slack};
pub use edf_analysis::tests::{
    AllApproximatedTest, BoundSelection, DensityTest, DeviTest, DynamicErrorTest, LevelGrowth,
    LiuLaylandTest, ProcessorDemandTest, QpaTest, RevisionOrder, SuperpositionTest,
};
pub use edf_analysis::{all_tests, Analysis, DemandOverload, FeasibilityTest, Verdict};
pub use edf_gen::{PeriodDistribution, TaskSetConfig};
pub use edf_model::{
    EventStream, EventStreamTask, Task, TaskBuilder, TaskError, TaskSet, Time,
};
pub use edf_sim::{simulate_edf_feasibility, OracleVerdict, SchedulingPolicy, Simulator};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_compose() {
        let ts = TaskSet::from_tasks(vec![Task::from_ticks(1, 5, 10).unwrap()]);
        assert!(ProcessorDemandTest::new().analyze(&ts).is_feasible());
        assert!(simulate_edf_feasibility(&ts).is_schedulable());
        assert_eq!(all_tests().len(), 16);
    }
}
